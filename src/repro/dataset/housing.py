"""Synthetic Zillow-like housing catalog.

Zillow is the paper's large, lower-dimensional demonstration database.  The
generator reproduces the properties the demo scenarios rely on:

* **price and square footage are strongly positively correlated**, which is
  why the paper's best-case function ``price + squarefeet`` finishes quickly —
  the user ranking agrees with the hidden system ranking;
* listings carry enough extra numeric attributes (bedrooms, bathrooms, year
  built, lot size, price per square foot) to exercise multi-dimensional
  ranking functions;
* ZIP code and city facets support the filtering section of the UI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dataset import generators as gen
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import ColumnTable

#: Cities mirroring a single metro area search on Zillow.
CITIES = (
    "arlington",
    "fort_worth",
    "dallas",
    "irving",
    "plano",
    "grand_prairie",
    "mansfield",
)
HOME_TYPES = ("house", "condo", "townhouse", "apartment", "lot")


@dataclass(frozen=True)
class HousingCatalogConfig:
    """Knobs for the synthetic housing catalog."""

    size: int = 6000
    seed: int = 20180417
    price_lower: float = 40000.0
    price_upper: float = 2500000.0
    sqft_lower: float = 350.0
    sqft_upper: float = 9000.0
    year_lower: int = 1900
    year_upper: int = 2018
    lot_lower: float = 0.05
    lot_upper: float = 10.0
    price_per_sqft_noise: float = 45.0


def housing_schema(config: HousingCatalogConfig = HousingCatalogConfig()) -> Schema:
    """Schema of the simulated Zillow database."""
    return Schema(
        key="id",
        attributes=(
            Attribute.numeric(
                "price",
                config.price_lower,
                config.price_upper,
                description="Listing price in USD",
            ),
            Attribute.numeric(
                "squarefeet",
                config.sqft_lower,
                config.sqft_upper,
                description="Interior living area",
            ),
            Attribute.numeric(
                "bedrooms", 0, 8, description="Number of bedrooms"
            ),
            Attribute.numeric(
                "bathrooms", 1, 7, description="Number of bathrooms"
            ),
            Attribute.numeric(
                "year_built",
                config.year_lower,
                config.year_upper,
                description="Year the home was built",
            ),
            Attribute.numeric(
                "lot_size",
                config.lot_lower,
                config.lot_upper,
                description="Lot size in acres",
            ),
            Attribute.numeric(
                "price_per_sqft",
                5.0,
                1500.0,
                description="Price per square foot",
            ),
            Attribute.categorical("city", CITIES, description="City"),
            Attribute.categorical(
                "zipcode",
                tuple(gen.zipcode_pool(gen.make_rng(config.seed), 24)),
                description="ZIP code",
            ),
            Attribute.categorical("home_type", HOME_TYPES, description="Home type"),
        ),
    )


def generate_housing_catalog(
    config: HousingCatalogConfig = HousingCatalogConfig(),
) -> ColumnTable:
    """Generate the simulated Zillow catalog as a :class:`ColumnTable`."""
    rng = gen.make_rng(config.seed)
    count = config.size

    sqft = gen.round_column(
        gen.lognormal_column(
            rng,
            count,
            median=1900.0,
            sigma=0.42,
            lower=config.sqft_lower,
            upper=config.sqft_upper,
        ),
        decimals=0,
    )
    # Price per square foot varies by a noisy city-level factor; multiplying by
    # the square footage yields the strong positive price/sqft correlation the
    # paper's best case needs.
    price: List[float] = []
    price_per_sqft: List[float] = []
    for area in sqft:
        unit_price = max(35.0, rng.gauss(165.0, config.price_per_sqft_noise))
        listing_price = min(
            max(area * unit_price, config.price_lower), config.price_upper
        )
        price.append(round(listing_price, 0))
        price_per_sqft.append(round(listing_price / max(area, 1.0), 2))

    bedrooms = gen.integer_column(rng, count, 0, 8, mode=3)
    bathrooms = gen.integer_column(rng, count, 1, 7, mode=2)
    year_built = gen.integer_column(
        rng, count, config.year_lower, config.year_upper, mode=1995
    )
    lot_size = gen.round_column(
        gen.lognormal_column(
            rng,
            count,
            median=0.25,
            sigma=0.8,
            lower=config.lot_lower,
            upper=config.lot_upper,
        ),
        decimals=2,
    )

    schema = housing_schema(config)
    zip_values = schema.require_categorical("zipcode").categories
    city = gen.categorical_column(
        rng, count, CITIES, weights=(30, 22, 20, 10, 8, 6, 4)
    )
    zipcode = gen.categorical_column(rng, count, zip_values)
    home_type = gen.categorical_column(
        rng, count, HOME_TYPES, weights=(62, 14, 12, 8, 4)
    )

    return ColumnTable(
        {
            "id": gen.assign_ids("ZL", count),
            "price": price,
            "squarefeet": [float(v) for v in sqft],
            "bedrooms": [float(v) for v in bedrooms],
            "bathrooms": [float(v) for v in bathrooms],
            "year_built": [float(v) for v in year_built],
            "lot_size": lot_size,
            "price_per_sqft": price_per_sqft,
            "city": city,
            "zipcode": zipcode,
            "home_type": home_type,
        }
    )


def catalog_statistics(catalog: ColumnTable) -> Dict[str, Dict[str, float]]:
    """Numeric summaries for the example scripts and documentation."""
    return {
        name: gen.summarize_column([float(v) for v in catalog.column(name)])
        for name in ("price", "squarefeet", "bedrooms", "year_built", "lot_size")
    }
