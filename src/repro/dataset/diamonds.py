"""Synthetic Blue Nile-like diamond catalog.

Blue Nile is the paper's high-dimensional demonstration database: diamonds
carry many rankable numeric attributes (price, carat, depth, table,
length/width ratio) plus categorical facets (shape, cut, color, clarity).
The generator reproduces the statistical features the paper's scenarios
depend on:

* **price** is right-skewed and strongly driven by carat (bigger stones cost
  much more), which makes ranking functions that mix price and carat
  positively correlated with the hidden system ranking;
* **depth** and **table** are narrow, dense percentage bands (≈55–70 %),
  producing the dense regions that defeat plain binary search and motivate
  ``(1D/MD)-RERANK``'s on-the-fly indexing;
* roughly **20 % of the stones share ``length_width_ratio == 1.0``** (round
  and square cuts), reproducing the general-positioning violation behind the
  paper's worst-case function ``price + length_width_ratio``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dataset import generators as gen
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import ColumnTable

#: Facet values mirroring Blue Nile's search form.
SHAPES = ("round", "princess", "cushion", "emerald", "oval", "radiant", "pear")
CUTS = ("good", "very_good", "ideal", "astor_ideal")
COLORS = ("J", "I", "H", "G", "F", "E", "D")
CLARITIES = ("SI2", "SI1", "VS2", "VS1", "VVS2", "VVS1", "IF", "FL")


@dataclass(frozen=True)
class DiamondCatalogConfig:
    """Knobs for the synthetic diamond catalog.

    ``lwr_cluster_fraction`` is the fraction of stones whose
    ``length_width_ratio`` is exactly 1.0; the paper reports about 20 % on the
    live site, and the worst-case benchmark depends on this cluster exceeding
    the web database's ``system-k``.
    """

    size: int = 4000
    seed: int = 20180416
    price_lower: float = 300.0
    price_upper: float = 60000.0
    carat_lower: float = 0.2
    carat_upper: float = 5.0
    depth_lower: float = 55.0
    depth_upper: float = 70.0
    table_lower: float = 50.0
    table_upper: float = 65.0
    lwr_lower: float = 0.95
    lwr_upper: float = 2.5
    lwr_cluster_fraction: float = 0.20


def diamond_schema(config: DiamondCatalogConfig = DiamondCatalogConfig()) -> Schema:
    """Schema of the simulated Blue Nile database."""
    return Schema(
        key="id",
        attributes=(
            Attribute.numeric(
                "price",
                config.price_lower,
                config.price_upper,
                description="Price in USD",
            ),
            Attribute.numeric(
                "carat",
                config.carat_lower,
                config.carat_upper,
                description="Carat weight",
            ),
            Attribute.numeric(
                "depth",
                config.depth_lower,
                config.depth_upper,
                description="Depth percentage",
            ),
            Attribute.numeric(
                "table",
                config.table_lower,
                config.table_upper,
                description="Table percentage",
            ),
            Attribute.numeric(
                "length_width_ratio",
                config.lwr_lower,
                config.lwr_upper,
                description="Length to width ratio",
            ),
            Attribute.categorical("shape", SHAPES, description="Diamond shape"),
            Attribute.categorical("cut", CUTS, description="Cut grade"),
            Attribute.categorical("color", COLORS, description="Color grade"),
            Attribute.categorical("clarity", CLARITIES, description="Clarity grade"),
        ),
    )


def generate_diamond_catalog(
    config: DiamondCatalogConfig = DiamondCatalogConfig(),
) -> ColumnTable:
    """Generate the simulated Blue Nile catalog as a :class:`ColumnTable`."""
    rng = gen.make_rng(config.seed)
    count = config.size

    carat = gen.round_column(
        gen.lognormal_column(
            rng,
            count,
            median=0.9,
            sigma=0.55,
            lower=config.carat_lower,
            upper=config.carat_upper,
        ),
        decimals=2,
    )
    # Price grows super-linearly with carat; add multiplicative noise so the
    # correlation is strong but not degenerate.
    price: List[float] = []
    for weight in carat:
        base = 2800.0 * (weight ** 1.9)
        noisy = base * rng.uniform(0.7, 1.45)
        price.append(
            round(min(max(noisy, config.price_lower), config.price_upper), 0)
        )

    depth = gen.round_column(
        gen.correlated_column(
            rng,
            base=[rng.uniform(0.0, 1.0) for _ in range(count)],
            slope=(config.depth_upper - config.depth_lower) * 0.35,
            intercept=config.depth_lower + 4.0,
            noise_sigma=1.2,
            lower=config.depth_lower,
            upper=config.depth_upper,
        ),
        decimals=1,
    )
    table = gen.round_column(
        gen.uniform_column(rng, count, config.table_lower + 2.0, config.table_upper - 2.0),
        decimals=1,
    )
    lwr = gen.clustered_column(
        rng,
        count,
        cluster_value=1.0,
        cluster_fraction=config.lwr_cluster_fraction,
        lower=config.lwr_lower,
        upper=config.lwr_upper,
        decimals=2,
    )

    shape = _shapes_consistent_with_lwr(rng, lwr)
    cut = gen.categorical_column(rng, count, CUTS, weights=(20, 35, 35, 10))
    color = gen.categorical_column(rng, count, COLORS, weights=(8, 10, 16, 20, 18, 16, 12))
    clarity = gen.categorical_column(
        rng, count, CLARITIES, weights=(12, 18, 22, 18, 12, 9, 6, 3)
    )

    return ColumnTable(
        {
            "id": gen.assign_ids("LD", count),
            "price": price,
            "carat": carat,
            "depth": depth,
            "table": table,
            "length_width_ratio": lwr,
            "shape": shape,
            "cut": cut,
            "color": color,
            "clarity": clarity,
        }
    )


def _shapes_consistent_with_lwr(rng, lwr: List[float]) -> List[str]:
    """Choose shapes consistent with the length/width ratio: stones at exactly
    1.0 are round or princess; elongated stones are oval, pear, or emerald."""
    shapes = []
    for ratio in lwr:
        if ratio == 1.0:
            shapes.append(rng.choice(("round", "princess", "cushion")))
        elif ratio < 1.3:
            shapes.append(rng.choice(("cushion", "radiant", "princess", "round")))
        else:
            shapes.append(rng.choice(("oval", "pear", "emerald", "radiant")))
    return shapes


def catalog_statistics(catalog: ColumnTable) -> Dict[str, Dict[str, float]]:
    """Numeric summaries for the example scripts and documentation."""
    return {
        name: gen.summarize_column([float(v) for v in catalog.column(name)])
        for name in ("price", "carat", "depth", "table", "length_width_ratio")
    }
