"""Dataset substrate: schemas, a lightweight columnar table, and synthetic
catalog generators standing in for the Blue Nile and Zillow web databases."""

from repro.dataset.schema import Attribute, AttributeKind, Schema
from repro.dataset.table import ColumnTable
from repro.dataset.diamonds import DiamondCatalogConfig, generate_diamond_catalog
from repro.dataset.housing import HousingCatalogConfig, generate_housing_catalog

__all__ = [
    "Attribute",
    "AttributeKind",
    "Schema",
    "ColumnTable",
    "DiamondCatalogConfig",
    "generate_diamond_catalog",
    "HousingCatalogConfig",
    "generate_housing_catalog",
]
