"""Low-level synthetic data primitives.

The real QR2 demonstration runs against the live Blue Nile and Zillow web
sites.  Those sites are not reachable here, so the catalogs are generated
synthetically.  The generators in this module provide the statistical
building blocks the two catalog modules need:

* correlated numeric columns (house price strongly follows square footage —
  the paper's "best case" relies on this positive correlation),
* heavy value clusters (about 20 % of Blue Nile diamonds share
  ``length_width_ratio == 1.0`` — the paper's "worst case" relies on this
  general-positioning violation),
* skewed (log-normal-ish) price distributions, and
* categorical columns drawn with configurable popularity weights.

Everything is driven by :class:`random.Random` so catalogs are reproducible
from a seed without depending on global NumPy state.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.dataset.schema import Attribute, Schema

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.sqlstore.store import SQLiteTupleStore


def make_rng(seed: int) -> random.Random:
    """Create a deterministic random generator for catalog construction."""
    return random.Random(seed)


def lognormal_column(
    rng: random.Random,
    count: int,
    median: float,
    sigma: float,
    lower: float,
    upper: float,
) -> List[float]:
    """Draw ``count`` log-normal values with the given ``median``/``sigma``,
    clamped to ``[lower, upper]``.

    Prices on both Blue Nile and Zillow are heavily right-skewed; a clamped
    log-normal reproduces that shape well enough for query-cost behaviour
    (most tuples live in a narrow low-price band, so range queries near the
    cheap end overflow much more often than near the expensive end).
    """
    mu = math.log(median)
    values = []
    for _ in range(count):
        value = math.exp(rng.gauss(mu, sigma))
        values.append(min(max(value, lower), upper))
    return values


def correlated_column(
    rng: random.Random,
    base: Sequence[float],
    slope: float,
    intercept: float,
    noise_sigma: float,
    lower: float,
    upper: float,
) -> List[float]:
    """Produce a column linearly correlated with ``base`` plus Gaussian noise.

    The output is ``slope * base + intercept + noise`` clamped to the domain,
    which yields a configurable Pearson correlation: small ``noise_sigma``
    gives near-perfect correlation, large values approach independence.
    """
    values = []
    for b in base:
        value = slope * b + intercept + rng.gauss(0.0, noise_sigma)
        values.append(min(max(value, lower), upper))
    return values


def uniform_column(
    rng: random.Random, count: int, lower: float, upper: float
) -> List[float]:
    """Draw ``count`` values uniformly from ``[lower, upper]``."""
    return [rng.uniform(lower, upper) for _ in range(count)]


def integer_column(
    rng: random.Random, count: int, lower: int, upper: int, mode: Optional[int] = None
) -> List[int]:
    """Draw ``count`` integers from ``[lower, upper]``.

    When ``mode`` is given a triangular distribution peaked at ``mode`` is
    used (bedroom/bathroom counts cluster around 3/2 in real listings).
    """
    if mode is None:
        return [rng.randint(lower, upper) for _ in range(count)]
    values = []
    for _ in range(count):
        value = rng.triangular(lower, upper, mode)
        values.append(int(round(value)))
    return values


def clustered_column(
    rng: random.Random,
    count: int,
    cluster_value: float,
    cluster_fraction: float,
    lower: float,
    upper: float,
    decimals: int = 2,
) -> List[float]:
    """Column in which ``cluster_fraction`` of the values equal ``cluster_value``.

    This reproduces the paper's worst case: roughly 20 % of Blue Nile diamonds
    share ``length_width_ratio == 1.0``, so a query that pins that value can
    never be resolved by range narrowing and must be crawled instead.  The
    remaining values are uniform over the domain and rounded to ``decimals``
    places (real sites report these measurements with limited precision, which
    also creates many small ties).
    """
    if not 0.0 <= cluster_fraction <= 1.0:
        raise ValueError("cluster_fraction must lie in [0, 1]")
    values = []
    for _ in range(count):
        if rng.random() < cluster_fraction:
            values.append(cluster_value)
        else:
            values.append(round(rng.uniform(lower, upper), decimals))
    return values


def categorical_column(
    rng: random.Random,
    count: int,
    categories: Sequence[str],
    weights: Optional[Sequence[float]] = None,
) -> List[str]:
    """Draw ``count`` categorical values with optional popularity ``weights``."""
    if weights is not None and len(weights) != len(categories):
        raise ValueError("weights must match categories")
    return rng.choices(list(categories), weights=weights, k=count)


def jitter_ties(
    rng: random.Random,
    values: Sequence[float],
    fraction: float,
    magnitude: float,
    lower: float,
    upper: float,
) -> List[float]:
    """Copy ``values`` nudging a random ``fraction`` of them by up to
    ``magnitude`` — used to control how many exact ties a column contains."""
    out = []
    for value in values:
        if rng.random() < fraction:
            value = min(max(value + rng.uniform(-magnitude, magnitude), lower), upper)
        out.append(value)
    return out


def round_column(values: Sequence[float], decimals: int) -> List[float]:
    """Round every value to ``decimals`` places (web sites display rounded
    numbers, which is what their search filters operate on)."""
    return [round(float(v), decimals) for v in values]


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences.

    Used by the catalog tests to assert that the generated data actually has
    the correlation structure the paper's scenarios depend on.
    """
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def zipcode_pool(rng: random.Random, count: int, prefix: int = 76) -> List[str]:
    """Generate ``count`` plausible ZIP codes sharing a metro ``prefix``."""
    pool = set()
    while len(pool) < count:
        pool.add(f"{prefix:02d}{rng.randint(0, 999):03d}")
    return sorted(pool)


def assign_ids(prefix: str, count: int) -> List[str]:
    """Stable, human-readable tuple identifiers (``LD-000042`` style)."""
    return [f"{prefix}-{index:06d}" for index in range(count)]


def summarize_column(values: Sequence[float]) -> Dict[str, float]:
    """Small numeric summary used by the examples when printing catalogs."""
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    if n == 0:
        raise ValueError("cannot summarize an empty column")

    def percentile(q: float) -> float:
        position = q * (n - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return ordered[low]
        weight = position - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    return {
        "count": float(n),
        "min": ordered[0],
        "p25": percentile(0.25),
        "median": percentile(0.5),
        "p75": percentile(0.75),
        "max": ordered[-1],
        "mean": sum(ordered) / n,
    }


def split_domain(
    lower: float, upper: float, parts: int
) -> List[Tuple[float, float]]:
    """Split ``[lower, upper]`` into ``parts`` equal-width sub-intervals."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    if lower > upper:
        raise ValueError("inverted domain")
    width = (upper - lower) / parts
    return [(lower + i * width, lower + (i + 1) * width) for i in range(parts)]


# --------------------------------------------------------------------- #
# Data-scale synthetic catalog (the 10⁶-tuple benchmark tier)
# --------------------------------------------------------------------- #

#: Categorical domain of the scale catalog, weighted to mimic popularity skew.
SCALE_CATEGORIES: Tuple[str, ...] = (
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta",
    "eta", "theta", "iota", "kappa", "lambda", "mu",
)

_SCALE_CATEGORY_WEIGHTS: Tuple[float, ...] = (
    24.0, 18.0, 14.0, 11.0, 8.0, 6.0, 5.0, 4.0, 3.5, 2.5, 2.0, 2.0,
)


def scale_catalog_schema() -> Schema:
    """Schema of the deterministic data-scale catalog.

    Shaped like the diamond/housing catalogs — one skewed price-like
    attribute, uniform and correlated numerics, a weighted categorical — but
    generator-cheap, so million-row catalogs build in seconds for the
    ``bench_catalog_scale`` tier.
    """
    return Schema(
        key="id",
        attributes=(
            Attribute.numeric("price", 10.0, 5000.0),
            Attribute.numeric("rating", 0.0, 10.0),
            Attribute.numeric("weight", 0.0, 200.0),
            Attribute.categorical("category", SCALE_CATEGORIES),
        ),
    )


def generate_scale_catalog(
    store: "SQLiteTupleStore",
    rows: int,
    seed: int = 13,
    batch_size: int = 10_000,
) -> int:
    """Write ``rows`` deterministic synthetic tuples straight into ``store``.

    This is the feeding half of the data-scale tier: tuples are generated
    and upserted batch by batch, so at no point does the catalog exist in
    Python memory — it is streamed back out with
    :meth:`~repro.sqlstore.store.SQLiteTupleStore.iter_rows` at load time.
    The value stream depends only on ``seed`` and the running row index
    (never on ``batch_size``), so any two invocations produce identical
    stores.  Returns the number of rows written.
    """
    if rows < 0:
        raise ValueError("rows must be non-negative")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    rng = make_rng(seed)
    mu = math.log(320.0)
    cum_weights = list(_SCALE_CATEGORY_WEIGHTS)
    for index in range(1, len(cum_weights)):
        cum_weights[index] += cum_weights[index - 1]
    written = 0
    # Draws happen in strict row order (price, rating, weight, category per
    # row), so the value stream depends only on ``seed`` and the row index.
    for start in range(0, rows, batch_size):
        count = min(batch_size, rows - start)
        batch: List[Dict[str, object]] = []
        for offset in range(count):
            price = round(min(max(math.exp(rng.gauss(mu, 0.6)), 10.0), 5000.0), 2)
            rating = round(rng.uniform(0.0, 10.0), 1)
            weight = round(
                min(max(0.02 * price + 1.0 + rng.gauss(0.0, 4.0), 0.0), 200.0), 2
            )
            category = rng.choices(
                SCALE_CATEGORIES, cum_weights=cum_weights, k=1
            )[0]
            batch.append(
                {
                    "id": f"SC-{start + offset:08d}",
                    "price": price,
                    "rating": rating,
                    "weight": weight,
                    "category": category,
                }
            )
        written += store.upsert(batch)
    return written
