"""Attribute and schema definitions.

A web database exposes a fixed set of *searchable attributes* through its
public interface.  Each attribute is either numeric (range sliders such as
``price`` or ``carat``) or categorical (drop-downs such as ``cut`` or
``shape``).  The schema records, for every attribute, its kind and its
advertised domain (minimum/maximum for numeric attributes, the value list for
categorical ones) so that queries and ranking functions can be validated
before they are sent to the database.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import SchemaError


class AttributeKind(enum.Enum):
    """Kind of a searchable attribute."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class Attribute:
    """A single searchable attribute of a web database.

    Parameters
    ----------
    name:
        Attribute name as used in queries and ranking functions.
    kind:
        Whether the attribute is numeric or categorical.
    lower, upper:
        Advertised domain bounds for numeric attributes.  These are the bounds
        shown on the web form's sliders; the true data may not span the full
        range.
    categories:
        Allowed values for categorical attributes.
    rankable:
        Whether the third-party service lets users rank on this attribute.
        Categorical attributes are generally not rankable.
    description:
        Human-readable description shown by the service UI.
    """

    name: str
    kind: AttributeKind
    lower: Optional[float] = None
    upper: Optional[float] = None
    categories: Tuple[str, ...] = ()
    rankable: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.kind is AttributeKind.NUMERIC:
            if self.lower is None or self.upper is None:
                raise SchemaError(
                    f"numeric attribute {self.name!r} requires lower and upper bounds"
                )
            if self.lower > self.upper:
                raise SchemaError(
                    f"numeric attribute {self.name!r} has inverted bounds "
                    f"({self.lower} > {self.upper})"
                )
        else:
            if not self.categories:
                raise SchemaError(
                    f"categorical attribute {self.name!r} requires a category list"
                )
            if len(set(self.categories)) != len(self.categories):
                raise SchemaError(
                    f"categorical attribute {self.name!r} has duplicate categories"
                )

    @property
    def is_numeric(self) -> bool:
        """True for numeric attributes."""
        return self.kind is AttributeKind.NUMERIC

    @property
    def is_categorical(self) -> bool:
        """True for categorical attributes."""
        return self.kind is AttributeKind.CATEGORICAL

    @property
    def width(self) -> float:
        """Width of the advertised numeric domain."""
        if not self.is_numeric:
            raise SchemaError(f"attribute {self.name!r} is not numeric")
        assert self.lower is not None and self.upper is not None
        return self.upper - self.lower

    def contains(self, value: object) -> bool:
        """Return True when ``value`` lies in the advertised domain."""
        if self.is_numeric:
            if not isinstance(value, (int, float)):
                return False
            assert self.lower is not None and self.upper is not None
            return self.lower <= float(value) <= self.upper
        return value in self.categories

    @staticmethod
    def numeric(
        name: str,
        lower: float,
        upper: float,
        rankable: bool = True,
        description: str = "",
    ) -> "Attribute":
        """Convenience constructor for a numeric attribute."""
        return Attribute(
            name=name,
            kind=AttributeKind.NUMERIC,
            lower=float(lower),
            upper=float(upper),
            rankable=rankable,
            description=description,
        )

    @staticmethod
    def categorical(
        name: str,
        categories: Sequence[str],
        description: str = "",
    ) -> "Attribute":
        """Convenience constructor for a categorical attribute."""
        return Attribute(
            name=name,
            kind=AttributeKind.CATEGORICAL,
            categories=tuple(categories),
            rankable=False,
            description=description,
        )


@dataclass(frozen=True)
class Schema:
    """Ordered collection of attributes describing a web database.

    The ``key`` attribute names the unique tuple identifier (for example the
    listing id or the diamond stock number); it is always present in returned
    tuples but is never searchable or rankable.
    """

    attributes: Tuple[Attribute, ...]
    key: str = "id"

    def __post_init__(self) -> None:
        names = [attribute.name for attribute in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError("schema contains duplicate attribute names")
        if self.key in names:
            raise SchemaError(
                f"key column {self.key!r} must not also be a searchable attribute"
            )

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, name: object) -> bool:
        return any(attribute.name == name for attribute in self.attributes)

    @property
    def names(self) -> List[str]:
        """Names of all searchable attributes, in schema order."""
        return [attribute.name for attribute in self.attributes]

    @property
    def numeric_names(self) -> List[str]:
        """Names of numeric attributes, in schema order."""
        return [a.name for a in self.attributes if a.is_numeric]

    @property
    def categorical_names(self) -> List[str]:
        """Names of categorical attributes, in schema order."""
        return [a.name for a in self.attributes if a.is_categorical]

    @property
    def rankable_names(self) -> List[str]:
        """Names of attributes users may rank on."""
        return [a.name for a in self.attributes if a.rankable and a.is_numeric]

    def attribute(self, name: str) -> Attribute:
        """Return the attribute with ``name`` or raise :class:`SchemaError`."""
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"unknown attribute {name!r}")

    def require_numeric(self, name: str) -> Attribute:
        """Return the numeric attribute ``name`` or raise :class:`SchemaError`."""
        attribute = self.attribute(name)
        if not attribute.is_numeric:
            raise SchemaError(f"attribute {name!r} is not numeric")
        return attribute

    def require_categorical(self, name: str) -> Attribute:
        """Return the categorical attribute ``name`` or raise :class:`SchemaError`."""
        attribute = self.attribute(name)
        if not attribute.is_categorical:
            raise SchemaError(f"attribute {name!r} is not categorical")
        return attribute

    def domain_bounds(self, name: str) -> Tuple[float, float]:
        """Advertised ``(lower, upper)`` bounds of a numeric attribute."""
        attribute = self.require_numeric(name)
        assert attribute.lower is not None and attribute.upper is not None
        return attribute.lower, attribute.upper

    def validate_row(self, row: Dict[str, object]) -> None:
        """Validate that ``row`` carries the key and legal attribute values."""
        if self.key not in row:
            raise SchemaError(f"row is missing key column {self.key!r}")
        for attribute in self.attributes:
            if attribute.name not in row:
                raise SchemaError(f"row is missing attribute {attribute.name!r}")
            if not attribute.contains(row[attribute.name]):
                raise SchemaError(
                    f"value {row[attribute.name]!r} outside domain of "
                    f"attribute {attribute.name!r}"
                )

    def columns(self) -> List[str]:
        """All column names stored for a tuple: the key plus every attribute."""
        return [self.key] + self.names


def schema_from_rows(
    rows: Iterable[Dict[str, object]],
    key: str = "id",
    rankable: Optional[Sequence[str]] = None,
) -> Schema:
    """Infer a :class:`Schema` from an iterable of row dictionaries.

    Numeric columns become numeric attributes with bounds set to the observed
    minimum/maximum; string columns become categorical attributes with the
    observed distinct values.  ``rankable`` restricts which numeric attributes
    are offered for ranking (default: all of them).
    """
    materialized = list(rows)
    if not materialized:
        raise SchemaError("cannot infer a schema from zero rows")
    first = materialized[0]
    attributes: List[Attribute] = []
    for name, value in first.items():
        if name == key:
            continue
        column = [row[name] for row in materialized]
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            numeric_column = [float(v) for v in column]
            is_rankable = rankable is None or name in rankable
            attributes.append(
                Attribute.numeric(
                    name,
                    min(numeric_column),
                    max(numeric_column),
                    rankable=is_rankable,
                )
            )
        else:
            categories = sorted({str(v) for v in column})
            attributes.append(Attribute.categorical(name, categories))
    return Schema(attributes=tuple(attributes), key=key)
