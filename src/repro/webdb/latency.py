"""Network latency simulation.

Reranking a query through a third-party service is dominated by round trips to
the remote web database (the paper's Fig. 4 reports 33 seconds for 27 queries
against Zillow, i.e. roughly a second per query).  The latency model makes that
cost explicit so that the parallel-processing benchmarks can demonstrate the
wall-clock benefit of issuing verification queries concurrently.

Two modes are supported:

* ``sleep=True`` — the model actually sleeps, so wall-clock measurements (and
  thread-level parallelism) behave like a remote service;
* ``sleep=False`` — the model only *accounts* for the delay, returning the
  number of seconds a real call would have taken.  The benchmark harness uses
  this mode to report paper-comparable times without spending hours sleeping.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass


@dataclass
class LatencyModel:
    """Configurable per-query latency.

    Parameters
    ----------
    mean_seconds:
        Mean simulated round-trip time.  ``0.0`` disables latency entirely.
    jitter:
        Fractional jitter: each draw is uniform in
        ``[mean*(1-jitter), mean*(1+jitter)]``.
    sleep:
        Whether :meth:`delay` actually sleeps or just accounts.
    seed:
        Seed for the jitter; draws are thread-safe.
    """

    mean_seconds: float = 0.0
    jitter: float = 0.25
    sleep: bool = False
    seed: int = 11

    def __post_init__(self) -> None:
        if self.mean_seconds < 0:
            raise ValueError("mean_seconds must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    def draw(self) -> float:
        """Draw one latency value (seconds) without sleeping."""
        if self.mean_seconds == 0.0:
            return 0.0
        with self._lock:
            factor = self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return self.mean_seconds * factor

    def delay(self) -> float:
        """Apply one query's latency.

        Returns the number of seconds attributed to the query.  When ``sleep``
        is enabled the calling thread is blocked for that long, which is what
        makes the parallel executor's wall-clock advantage observable.
        """
        seconds = self.draw()
        if self.sleep and seconds > 0.0:
            time.sleep(seconds)
        return seconds

    @staticmethod
    def disabled() -> "LatencyModel":
        """A latency model that never delays (unit tests)."""
        return LatencyModel(mean_seconds=0.0)

    @staticmethod
    def accounted(mean_seconds: float, jitter: float = 0.25, seed: int = 11) -> "LatencyModel":
        """Latency that is accounted for but never slept (benchmarks)."""
        return LatencyModel(mean_seconds=mean_seconds, jitter=jitter, sleep=False, seed=seed)

    @staticmethod
    def realtime(mean_seconds: float, jitter: float = 0.25, seed: int = 11) -> "LatencyModel":
        """Latency that really sleeps (integration demos)."""
        return LatencyModel(mean_seconds=mean_seconds, jitter=jitter, sleep=True, seed=seed)
