"""The top-k search interface contract.

Everything the reranking service knows about a web database goes through this
interface: submit a conjunctive :class:`~repro.webdb.query.SearchQuery`,
receive at most ``system-k`` tuples ordered by the hidden system ranking, plus
a flag telling whether the result was truncated (*overflow*).  The VLDB'16
paper distinguishes three outcomes:

* **overflow** — more than ``k`` tuples match; only the top ``k`` are returned,
  so the caller has *not* seen every matching tuple;
* **valid** — between 1 and ``k`` tuples match and all of them are returned;
* **underflow** — no tuple matches.

The algorithms' correctness hinges on this trichotomy: a region is "covered"
(fully observed) exactly when its query did not overflow.
"""

from __future__ import annotations

import enum
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataset.schema import Schema
from repro.webdb.query import SearchQuery

Row = Dict[str, object]


class Outcome(enum.Enum):
    """Result classification of a top-k query."""

    UNDERFLOW = "underflow"
    VALID = "valid"
    OVERFLOW = "overflow"


@dataclass(frozen=True)
class SearchResult:
    """Result of one top-k query.

    Attributes
    ----------
    query:
        The query that produced this result.
    rows:
        Returned tuples, ordered by the hidden system ranking (best first).
        At most ``system_k`` rows.
    outcome:
        Overflow / valid / underflow classification.
    system_k:
        The interface's ``k`` at the time of the query.
    elapsed_seconds:
        Simulated (or real, for the HTTP adapter) round-trip time.
    degraded:
        True when the answer is known-incomplete: one or more federated
        shards could not be reached (``missing_shards`` names them) or the
        answer was served from a generation-stale cache entry.  Degraded
        results are always classified ``OVERFLOW`` — they never claim to
        cover their query — and are never stored in the result cache.
    missing_shards:
        Names of the shards that contributed nothing to a degraded scatter.
    stale:
        True when the rows came from a generation-stale cache entry served
        while the live source was unavailable.
    """

    query: SearchQuery
    rows: Tuple[Row, ...]
    outcome: Outcome
    system_k: int
    elapsed_seconds: float = 0.0
    degraded: bool = False
    missing_shards: Tuple[str, ...] = ()
    stale: bool = False

    @property
    def is_overflow(self) -> bool:
        """True when more tuples matched than were returned."""
        return self.outcome is Outcome.OVERFLOW

    @property
    def is_underflow(self) -> bool:
        """True when no tuple matched."""
        return self.outcome is Outcome.UNDERFLOW

    @property
    def is_valid(self) -> bool:
        """True when every matching tuple was returned."""
        return self.outcome is Outcome.VALID

    @property
    def covers_query(self) -> bool:
        """True when the caller has now observed *every* tuple matching the
        query (the definition of a covered region in the paper)."""
        return self.outcome in (Outcome.VALID, Outcome.UNDERFLOW)

    def __len__(self) -> int:
        return len(self.rows)

    def keys(self, key_column: str = "id") -> List[object]:
        """Tuple identifiers of the returned rows, in rank order."""
        return [row[key_column] for row in self.rows]


class TopKInterface(ABC):
    """Abstract top-k search interface of a (hidden) web database."""

    @property
    @abstractmethod
    def schema(self) -> Schema:
        """Schema advertised by the public search form."""

    @property
    @abstractmethod
    def system_k(self) -> int:
        """Number of results the interface returns per query."""

    @abstractmethod
    def search(self, query: SearchQuery) -> SearchResult:
        """Execute ``query`` and return the top-k result."""

    # Optional hooks ---------------------------------------------------- #
    @property
    def key_column(self) -> str:
        """Name of the tuple identifier column."""
        return self.schema.key

    @property
    def supports_batched_search(self) -> bool:
        """True when :meth:`search_many` is cheaper than issuing the queries
        one by one (in-process engines that amortize planning work).  The
        query engine only batches a group when this is set; remote adapters
        keep the thread-pool fan-out that overlaps their real round trips."""
        return False

    def search_many(self, queries: Sequence[SearchQuery]) -> List[SearchResult]:
        """Execute a batch of queries; each counts as one query.

        The default simply loops over :meth:`search`; implementations that
        can amortize per-batch work override it and advertise the fact via
        :attr:`supports_batched_search`.
        """
        return [self.search(query) for query in queries]

    def queries_issued(self) -> int:
        """Total number of queries this interface has served (0 when the
        implementation does not track it)."""
        return 0


@dataclass
class InterfaceStatistics:
    """Mutable, thread-safe per-interface statistics, kept by instrumented
    wrappers.  ``record`` is called concurrently from the query engine's
    thread pool, so every fold happens under one lock — unlocked ``+=`` on the
    counters loses increments under parallel groups."""

    queries: int = 0
    overflow_queries: int = 0
    underflow_queries: int = 0
    valid_queries: int = 0
    rows_returned: int = 0
    elapsed_seconds: float = 0.0
    per_attribute_queries: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(self, result: SearchResult) -> None:
        """Fold one result into the statistics (thread-safe)."""
        with self._lock:
            self.queries += 1
            self.rows_returned += len(result.rows)
            self.elapsed_seconds += result.elapsed_seconds
            if result.outcome is Outcome.OVERFLOW:
                self.overflow_queries += 1
            elif result.outcome is Outcome.UNDERFLOW:
                self.underflow_queries += 1
            else:
                self.valid_queries += 1
            for attribute in result.query.constrained_attributes:
                self.per_attribute_queries[attribute] = (
                    self.per_attribute_queries.get(attribute, 0) + 1
                )

    def snapshot(self) -> Dict[str, object]:
        """Plain-dictionary snapshot for the service statistics panel."""
        with self._lock:
            return {
                "queries": self.queries,
                "overflow_queries": self.overflow_queries,
                "underflow_queries": self.underflow_queries,
                "valid_queries": self.valid_queries,
                "rows_returned": self.rows_returned,
                "elapsed_seconds": self.elapsed_seconds,
                "per_attribute_queries": dict(self.per_attribute_queries),
            }


class InstrumentedInterface(TopKInterface):
    """Wrapper adding statistics collection to any :class:`TopKInterface`.

    The reranking algorithms receive an instrumented interface so that the
    statistics panel can report the exact number of external queries a user
    request cost — the headline metric of the paper's evaluation.
    """

    def __init__(self, inner: TopKInterface) -> None:
        self._inner = inner
        self.statistics = InterfaceStatistics()

    @property
    def schema(self) -> Schema:
        return self._inner.schema

    @property
    def system_k(self) -> int:
        return self._inner.system_k

    @property
    def key_column(self) -> str:
        return self._inner.key_column

    @property
    def supports_batched_search(self) -> bool:
        return self._inner.supports_batched_search

    def search(self, query: SearchQuery) -> SearchResult:
        result = self._inner.search(query)
        self.statistics.record(result)
        return result

    def search_many(self, queries: Sequence[SearchQuery]) -> List[SearchResult]:
        results = self._inner.search_many(queries)
        for result in results:
            self.statistics.record(result)
        return results

    def queries_issued(self) -> int:
        return self.statistics.queries

    @property
    def inner(self) -> TopKInterface:
        """The wrapped interface."""
        return self._inner
