"""Hidden system ranking functions.

A web database orders matching tuples with a proprietary ranking function
before truncating to the top ``k``.  The reranking algorithms never see this
function — they only observe the truncated, ordered result pages — but the
simulation needs concrete implementations.  Several families are provided so
the workloads can construct user ranking functions that are positively
correlated, negatively correlated, or independent with respect to the system
ranking, which is the main axis of the paper's demonstration scenarios.

All rankings produce a *score*; tuples are returned in ascending score order
(score is "position pressure": lower is shown earlier).  Ties are broken by the
tuple key so that result ordering is deterministic.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Sequence

Row = Mapping[str, object]


def _stable_unit_score(key: str, cache: Dict[str, float]) -> float:
    """Stable pseudo-random value in ``[0, 1)`` derived from ``key``,
    memoized in ``cache`` so each distinct key is hashed exactly once
    (catalog sorting would otherwise re-hash every key O(n log n) times)."""
    score = cache.get(key)
    if score is None:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        score = int.from_bytes(digest[:8], "big") / float(1 << 64)
        cache[key] = score
    return score


class SystemRankingFunction(ABC):
    """Interface of the hidden ranking used by a simulated web database."""

    @abstractmethod
    def score(self, row: Row) -> float:
        """Score of ``row``; lower scores are ranked earlier."""

    def describe(self) -> str:
        """Human-readable description (used only by diagnostics, never shown
        to the reranking algorithms)."""
        return type(self).__name__

    def sort_key(self, key_column: str):
        """Return a sort key callable combining the score with the tuple key
        for deterministic tie-breaking."""

        def _key(row: Row):
            return (self.score(row), str(row.get(key_column, "")))

        return _key


class AttributeOrderRanking(SystemRankingFunction):
    """Rank by a single attribute, ascending or descending.

    Real sites frequently default to "price: low to high" or "newest first";
    this captures both.
    """

    def __init__(self, attribute: str, ascending: bool = True) -> None:
        self.attribute = attribute
        self.ascending = ascending

    def score(self, row: Row) -> float:
        value = float(row[self.attribute])  # type: ignore[arg-type]
        return value if self.ascending else -value

    def describe(self) -> str:
        direction = "asc" if self.ascending else "desc"
        return f"order by {self.attribute} {direction}"


class LinearSystemRanking(SystemRankingFunction):
    """Rank by a hidden linear combination of numeric attributes."""

    def __init__(self, weights: Mapping[str, float]) -> None:
        if not weights:
            raise ValueError("LinearSystemRanking requires at least one weight")
        self.weights = dict(weights)

    def score(self, row: Row) -> float:
        return sum(
            weight * float(row[attribute])  # type: ignore[arg-type]
            for attribute, weight in self.weights.items()
        )

    def describe(self) -> str:
        terms = " + ".join(f"{w:g}*{a}" for a, w in sorted(self.weights.items()))
        return f"linear({terms})"


class FeaturedScoreRanking(SystemRankingFunction):
    """A "featured"/relevance style ranking that mixes a visible attribute with
    a stable pseudo-random per-tuple boost.

    This mimics rankings like Zillow's default ordering, which is correlated
    with — but not a deterministic function of — any single visible attribute.
    The boost is derived from a hash of the tuple key so it is stable across
    queries (a requirement of the top-k interface contract).
    """

    def __init__(
        self,
        attribute: str,
        key_column: str = "id",
        attribute_weight: float = 1.0,
        boost_weight: float = 0.35,
        ascending: bool = True,
    ) -> None:
        self.attribute = attribute
        self.key_column = key_column
        self.attribute_weight = attribute_weight
        self.boost_weight = boost_weight
        self.ascending = ascending
        # Bounded by the number of distinct keys ever scored.
        self._boost_cache: Dict[str, float] = {}

    def _boost(self, row: Row) -> float:
        key = str(row.get(self.key_column, ""))
        return _stable_unit_score(key, self._boost_cache)

    def score(self, row: Row) -> float:
        value = float(row[self.attribute])  # type: ignore[arg-type]
        direction = 1.0 if self.ascending else -1.0
        return direction * self.attribute_weight * value + self.boost_weight * self._boost(row)

    def describe(self) -> str:
        return f"featured({self.attribute}, boost={self.boost_weight:g})"


class RandomTieBreakRanking(SystemRankingFunction):
    """A ranking completely independent of every visible attribute.

    Each tuple receives a stable pseudo-random score derived from its key.
    User ranking functions are, by construction, independent of this ordering,
    which is the hardest regime for the BASELINE algorithms.
    """

    def __init__(self, key_column: str = "id", salt: str = "qr2") -> None:
        self.key_column = key_column
        self.salt = salt
        self._score_cache: Dict[str, float] = {}

    def score(self, row: Row) -> float:
        key = f"{self.salt}:{row.get(self.key_column, '')}"
        return _stable_unit_score(key, self._score_cache)

    def describe(self) -> str:
        return "random(stable)"


def composite_ranking(
    rankings: Sequence[SystemRankingFunction], weights: Sequence[float]
) -> SystemRankingFunction:
    """Weighted combination of several rankings (used to build system rankings
    with a controlled degree of correlation to a visible attribute)."""
    if len(rankings) != len(weights) or not rankings:
        raise ValueError("rankings and weights must be non-empty and equal length")

    class _Composite(SystemRankingFunction):
        def score(self, row: Row) -> float:
            return sum(w * r.score(row) for r, w in zip(rankings, weights))

        def describe(self) -> str:
            parts = ", ".join(
                f"{w:g}*{r.describe()}" for r, w in zip(rankings, weights)
            )
            return f"composite({parts})"

    return _Composite()
