"""Shared query-result cache with in-flight request coalescing.

The paper's headline metric is the number of external top-k queries a
reranked request costs, and its latency model treats every query as a remote
round trip.  Reranking workloads are highly redundant — 1D-BINARY re-probes
overlapping intervals across users, MD Get-Next re-verifies the same regions,
and popular slider presets make many sessions issue near-identical query
sequences — so the single biggest lever for serving heavy traffic is to stop
re-issuing queries the service has already paid for.

:class:`QueryResultCache` turns that redundancy into zero-round-trip answers:

* **canonical keys** — entries are keyed on
  ``(namespace, system_k, SearchQuery.canonical_key())``, so semantically
  identical queries hit regardless of predicate order, and a change of the
  interface's ``system_k`` automatically invalidates every older entry (the
  overflow/valid/underflow trichotomy is only meaningful relative to ``k``);
* **per-interface namespaces** — one cache instance can be shared across every
  data source of a service without results bleeding between databases;
* **LRU + TTL eviction** — bounded memory, and a freshness horizon for
  deployments where the hidden database mutates;
* **request coalescing** — when several sessions miss on the same key at the
  same time, exactly one remote query is issued and the other callers wait on
  its result (the classic "thundering herd" guard).

Because a valid/underflow result proves the caller has observed *every* tuple
matching the query, replaying a cached result preserves the paper's
overflow/valid/underflow semantics exactly: the classification is a pure
function of the query, ``system_k``, and the database state the TTL bounds.

:class:`CachingInterface` is the drop-in wrapper counterpart of
:class:`~repro.webdb.interface.InstrumentedInterface` for callers that do not
go through the :class:`~repro.core.parallel.QueryEngine`.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dataset.schema import Schema
from repro.webdb.interface import SearchResult, TopKInterface
from repro.webdb.query import SearchQuery

#: ``(namespace, system_k, canonical query key)`` — the full cache identity.
CacheKey = Tuple[str, int, Tuple]


class FetchStatus(enum.Enum):
    """How a :meth:`QueryResultCache.fetch` call was satisfied."""

    MISS = "miss"  #: this caller issued the remote query
    HIT = "hit"  #: answered from a stored entry, zero round trips
    COALESCED = "coalesced"  #: rode along another caller's in-flight query


@dataclass
class CacheStatistics:
    """Mutable, thread-safe hit/miss/coalesce accounting for one cache."""

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(self, field: str, count: int = 1) -> None:
        """Add ``count`` to one counter (thread-safe)."""
        with self._lock:
            setattr(self, field, getattr(self, field) + count)

    @property
    def lookups(self) -> int:
        """Total lookups that were resolved (hits + coalesced + misses)."""
        return self.hits + self.coalesced + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a fresh remote query."""
        total = self.lookups
        if total == 0:
            return 0.0
        return (self.hits + self.coalesced) / total

    def snapshot(self) -> Dict[str, object]:
        """Plain-dictionary snapshot for the service statistics panel."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "invalidations": self.invalidations,
                "hit_rate": round(self.hit_rate, 4),
            }


@dataclass
class _Entry:
    """One stored result plus its insertion timestamp."""

    result: SearchResult
    stored_at: float


class _InFlight:
    """Rendezvous for callers coalescing onto one in-flight remote query."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Optional[SearchResult] = None
        self.error: Optional[BaseException] = None


class QueryResultCache:
    """Thread-safe, shared LRU+TTL cache of top-k search results.

    Parameters
    ----------
    max_entries:
        LRU capacity; the least-recently-used entry is evicted when a store
        would exceed it.
    ttl_seconds:
        Entry lifetime; ``None`` disables expiry (the simulated databases are
        immutable, so the default service configuration runs without a TTL).
    clock:
        Monotonic time source, injectable for the TTL tests.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive or None")
        self._max_entries = max_entries
        self._ttl = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._inflight: Dict[CacheKey, _InFlight] = {}
        self.statistics = CacheStatistics()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def max_entries(self) -> int:
        """The LRU capacity."""
        return self._max_entries

    @property
    def ttl_seconds(self) -> Optional[float]:
        """Entry lifetime, or ``None`` when entries never expire."""
        return self._ttl

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key_for(namespace: str, query: SearchQuery, system_k: int) -> CacheKey:
        """The canonical cache key of one query against one interface."""
        return (namespace, system_k, query.canonical_key())

    def snapshot(self) -> Dict[str, object]:
        """Counters plus occupancy, for the service statistics panel."""
        payload = self.statistics.snapshot()
        with self._lock:
            payload["entries"] = len(self._entries)
            payload["in_flight"] = len(self._inflight)
        payload["max_entries"] = self._max_entries
        payload["ttl_seconds"] = self._ttl
        return payload

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def lookup(
        self, namespace: str, query: SearchQuery, system_k: int
    ) -> Optional[SearchResult]:
        """Return the cached result for ``query``, or ``None`` on a miss.

        A hit is returned as a fresh copy with ``elapsed_seconds=0.0`` — a
        cached answer costs no round trip — and with copied rows so callers
        can never mutate the stored entry.  Misses are *not* counted here
        (:meth:`fetch` owns miss accounting); hits are.
        """
        key = self.key_for(namespace, query, system_k)
        with self._lock:
            entry = self._live_entry(key)
        if entry is None:
            return None
        self.statistics.record("hits")
        return self._replay(entry.result)

    def store(
        self, namespace: str, query: SearchQuery, system_k: int, result: SearchResult
    ) -> None:
        """Insert one result, evicting the LRU tail past ``max_entries``."""
        key = self.key_for(namespace, query, system_k)
        with self._lock:
            self._store_locked(key, result)

    def fetch(
        self,
        namespace: str,
        query: SearchQuery,
        system_k: int,
        compute: Callable[[], SearchResult],
    ) -> Tuple[SearchResult, FetchStatus]:
        """Resolve ``query`` through the cache, coalescing concurrent misses.

        Exactly one caller per key runs ``compute`` (the remote query); every
        concurrent caller blocks on that computation and shares its result.
        When the owning caller fails, one waiter at a time retries ownership,
        so a transient remote failure never poisons the key.

        Returns the result plus how it was satisfied; ``MISS`` results carry
        the real ``elapsed_seconds``, ``HIT``/``COALESCED`` results cost zero.
        """
        key = self.key_for(namespace, query, system_k)
        while True:
            with self._lock:
                entry = self._live_entry(key)
                if entry is not None:
                    self.statistics.record("hits")
                    return self._replay(entry.result), FetchStatus.HIT
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    break
            # Another caller owns the remote query for this key: wait for it.
            flight.done.wait()
            if flight.error is None and flight.result is not None:
                self.statistics.record("coalesced")
                return self._replay(flight.result), FetchStatus.COALESCED
            # The owner failed — loop back and contend for ownership.

        try:
            result = compute()
        except BaseException as error:
            flight.error = error
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()
            raise
        flight.result = result
        with self._lock:
            self._store_locked(key, result)
            self._inflight.pop(key, None)
        flight.done.set()
        self.statistics.record("misses")
        # The stored entry must never alias rows a caller can mutate, so the
        # MISS caller also gets copied rows (but keeps the real latency).
        return (
            replace(result, rows=tuple(dict(row) for row in result.rows)),
            FetchStatus.MISS,
        )

    def fetch_many(
        self,
        namespace: str,
        queries: Sequence[SearchQuery],
        system_k: int,
        compute_many: Callable[[List[SearchQuery]], List[SearchResult]],
    ) -> List[Tuple[SearchResult, FetchStatus]]:
        """Batched :meth:`fetch`: resolve a whole query group through the
        cache with at most one ``compute_many`` round trip.

        Under one lock pass, every query is classified: live entries are
        ``HIT``\\ s, keys another caller is already computing are coalesced
        onto that caller's flight, duplicates within the batch ride on the
        batch's own computation (the later occurrences are ``HIT``\\ s, exactly
        as in the sequential path where the first store answers the repeat),
        and the remaining keys are claimed by this caller.  The claimed
        queries are then computed in a single ``compute_many`` call — this is
        what lets a batched interface amortize planning work across a
        parallel group — stored, and published to any coalesced waiters.

        Returns ``(result, status)`` pairs aligned with ``queries``.  When
        ``compute_many`` raises, every claimed flight is failed and the error
        propagates; no partial results are returned.
        """
        materialized = list(queries)
        keys = [self.key_for(namespace, query, system_k) for query in materialized]
        outcomes: List[Optional[Tuple[SearchResult, FetchStatus]]] = [None] * len(keys)
        owned: "OrderedDict[CacheKey, _InFlight]" = OrderedDict()
        owner_position: Dict[CacheKey, int] = {}
        duplicates: List[Tuple[int, CacheKey]] = []
        waiting: List[Tuple[int, CacheKey, _InFlight]] = []
        hits = 0
        with self._lock:
            for position, key in enumerate(keys):
                entry = self._live_entry(key)
                if entry is not None:
                    outcomes[position] = (self._replay(entry.result), FetchStatus.HIT)
                    hits += 1
                    continue
                if key in owned:
                    duplicates.append((position, key))
                    continue
                flight = self._inflight.get(key)
                if flight is not None:
                    waiting.append((position, key, flight))
                    continue
                flight = _InFlight()
                self._inflight[key] = flight
                owned[key] = flight
                owner_position[key] = position
        if hits:
            self.statistics.record("hits", hits)

        owner_results: Dict[CacheKey, SearchResult] = {}
        if owned:
            batch = [materialized[owner_position[key]] for key in owned]
            try:
                results = compute_many(batch)
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"compute_many returned {len(results)} results "
                        f"for {len(batch)} queries"
                    )
            except BaseException as error:
                for flight in owned.values():
                    flight.error = error
                with self._lock:
                    for key in owned:
                        self._inflight.pop(key, None)
                for flight in owned.values():
                    flight.done.set()
                raise
            for flight, result in zip(owned.values(), results):
                flight.result = result
            with self._lock:
                for key, result in zip(owned, results):
                    self._store_locked(key, result)
                    self._inflight.pop(key, None)
            for flight in owned.values():
                flight.done.set()
            self.statistics.record("misses", len(results))
            for key, result in zip(owned, results):
                owner_results[key] = result
                outcomes[owner_position[key]] = (
                    replace(result, rows=tuple(dict(row) for row in result.rows)),
                    FetchStatus.MISS,
                )

        if duplicates:
            for position, key in duplicates:
                outcomes[position] = (self._replay(owner_results[key]), FetchStatus.HIT)
            self.statistics.record("hits", len(duplicates))

        for position, key, flight in waiting:
            flight.done.wait()
            if flight.error is None and flight.result is not None:
                self.statistics.record("coalesced")
                outcomes[position] = (self._replay(flight.result), FetchStatus.COALESCED)
            else:
                # The owning caller failed: contend for ownership of this one
                # key through the single-query path.
                query = materialized[position]
                outcomes[position] = self.fetch(
                    namespace,
                    query,
                    system_k,
                    lambda query=query: compute_many([query])[0],
                )

        complete: List[Tuple[SearchResult, FetchStatus]] = []
        for outcome in outcomes:
            assert outcome is not None, "fetch_many left a query unresolved"
            complete.append(outcome)
        return complete

    # ------------------------------------------------------------------ #
    # Invalidation
    # ------------------------------------------------------------------ #
    def invalidate(self, namespace: Optional[str] = None) -> int:
        """Drop every entry (or every entry of one namespace); returns the
        number removed.  In-flight queries are unaffected — they complete and
        re-store their (fresh) results."""
        with self._lock:
            if namespace is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                doomed = [key for key in self._entries if key[0] == namespace]
                for key in doomed:
                    del self._entries[key]
                removed = len(doomed)
        if removed:
            self.statistics.record("invalidations", removed)
        return removed

    # ------------------------------------------------------------------ #
    # Internals (call with the lock held)
    # ------------------------------------------------------------------ #
    def _live_entry(self, key: CacheKey) -> Optional[_Entry]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if self._ttl is not None and self._clock() - entry.stored_at >= self._ttl:
            del self._entries[key]
            self.statistics.record("expirations")
            return None
        self._entries.move_to_end(key)
        return entry

    def _store_locked(self, key: CacheKey, result: SearchResult) -> None:
        self._entries[key] = _Entry(result=result, stored_at=self._clock())
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self.statistics.record("evictions")

    @staticmethod
    def _replay(result: SearchResult) -> SearchResult:
        """A defensive copy of a stored result, at zero simulated cost."""
        return replace(
            result,
            rows=tuple(dict(row) for row in result.rows),
            elapsed_seconds=0.0,
        )


class CachingInterface(TopKInterface):
    """Wrapper adding shared result caching to any :class:`TopKInterface`.

    The counterpart of :class:`~repro.webdb.interface.InstrumentedInterface`:
    where that wrapper *counts* queries, this one *avoids* them.  Several
    wrappers may share one :class:`QueryResultCache`; each talks to it under
    its own namespace (derived from the inner interface's ``name`` when not
    given explicitly).
    """

    def __init__(
        self,
        inner: TopKInterface,
        cache: Optional[QueryResultCache] = None,
        namespace: Optional[str] = None,
    ) -> None:
        self._inner = inner
        self._cache = cache if cache is not None else QueryResultCache()
        self._namespace = namespace or default_namespace(inner)

    @property
    def schema(self) -> Schema:
        return self._inner.schema

    @property
    def system_k(self) -> int:
        return self._inner.system_k

    @property
    def key_column(self) -> str:
        return self._inner.key_column

    @property
    def inner(self) -> TopKInterface:
        """The wrapped interface."""
        return self._inner

    @property
    def cache(self) -> QueryResultCache:
        """The (possibly shared) result cache."""
        return self._cache

    @property
    def namespace(self) -> str:
        """This wrapper's namespace within the shared cache."""
        return self._namespace

    def search(self, query: SearchQuery) -> SearchResult:
        result, _ = self._cache.fetch(
            self._namespace,
            query,
            self._inner.system_k,
            lambda: self._inner.search(query),
        )
        return result

    def queries_issued(self) -> int:
        """Queries the *inner* interface actually served (hits excluded)."""
        return self._inner.queries_issued()


#: Generic default names that cannot distinguish two interfaces sharing one
#: cache — they fall through to the identity-derived namespace.
_GENERIC_NAMES = frozenset({"webdb"})


def default_namespace(interface: TopKInterface) -> str:
    """Stable cache namespace for an interface: its ``name`` when it has a
    distinctive one, otherwise an identity-derived fallback.

    The generic ``HiddenWebDatabase`` default name (``"webdb"``) is *not*
    used: two default-named databases sharing one cache would otherwise serve
    each other's results.  Callers sharing a cache across interfaces should
    either name their interfaces uniquely or pass an explicit namespace."""
    name = getattr(interface, "name", None)
    if isinstance(name, str) and name and name not in _GENERIC_NAMES:
        return name
    return f"iface-{id(interface):x}"
