"""Shared query-result cache with in-flight request coalescing.

The paper's headline metric is the number of external top-k queries a
reranked request costs, and its latency model treats every query as a remote
round trip.  Reranking workloads are highly redundant — 1D-BINARY re-probes
overlapping intervals across users, MD Get-Next re-verifies the same regions,
and popular slider presets make many sessions issue near-identical query
sequences — so the single biggest lever for serving heavy traffic is to stop
re-issuing queries the service has already paid for.

:class:`QueryResultCache` turns that redundancy into zero-round-trip answers:

* **canonical keys** — entries are keyed on
  ``(namespace, system_k, SearchQuery.canonical_key())``, so semantically
  identical queries hit regardless of predicate order, and a change of the
  interface's ``system_k`` automatically invalidates every older entry (the
  overflow/valid/underflow trichotomy is only meaningful relative to ``k``);
* **per-interface namespaces** — one cache instance can be shared across every
  data source of a service without results bleeding between databases;
* **containment answering** — a miss on query ``Q`` can be satisfied by any
  stored *covering* (valid/underflow) entry for a superset query
  ``Q' ⊇ Q``: a non-overflow result provably holds **every** tuple matching
  ``Q'``, so filtering its rank-ordered rows through ``Q.matches`` yields
  exactly what the database would return for ``Q`` — same rows, same order,
  same trichotomy — at zero round trips (status ``CONTAINED``).  Overflow
  entries are truncated and must never answer subsets;
* **LRU + TTL eviction** — bounded memory, and a freshness horizon for
  deployments where the hidden database mutates;
* **request coalescing** — when several sessions miss on the same key at the
  same time, exactly one remote query is issued and the other callers wait on
  its result (the classic "thundering herd" guard);
* **generation-checked stores** — :meth:`QueryResultCache.invalidate` bumps a
  generation counter, and in-flight queries that began *before* the
  invalidation do not re-store their (possibly stale) results after it;
* **delta invalidation** — :meth:`QueryResultCache.invalidate_delta` retires
  only the entries whose query a :class:`~repro.webdb.delta.CatalogDelta`
  can match, leaving unrelated entries (and the namespace generation) alone.
  A bounded per-namespace delta log extends the in-flight store guard: a
  query claimed before a delta only re-stores if no intervening delta could
  have changed its answer.

Because a valid/underflow result proves the caller has observed *every* tuple
matching the query, replaying a cached result preserves the paper's
overflow/valid/underflow semantics exactly: the classification is a pure
function of the query, ``system_k``, and the database state the TTL bounds.

:class:`CachingInterface` is the drop-in wrapper counterpart of
:class:`~repro.webdb.interface.InstrumentedInterface` for callers that do not
go through the :class:`~repro.core.parallel.QueryEngine`.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.dataset.schema import Schema
from repro.webdb.delta import CatalogDelta
from repro.webdb.interface import Outcome, SearchResult, TopKInterface
from repro.webdb.query import SearchQuery

#: ``(namespace, system_k, canonical query key)`` — the full cache identity.
CacheKey = Tuple[str, int, Tuple]


class FetchStatus(enum.Enum):
    """How a :meth:`QueryResultCache.fetch` call was satisfied."""

    MISS = "miss"  #: this caller issued the remote query
    HIT = "hit"  #: answered from a stored entry, zero round trips
    COALESCED = "coalesced"  #: rode along another caller's in-flight query
    CONTAINED = "contained"  #: derived from a covering superset entry
    STALE = "stale"  #: generation-stale entry served while the source is down


@dataclass
class CacheStatistics:
    """Mutable, thread-safe hit/miss/coalesce accounting for one cache."""

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    contained: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    delta_invalidations: int = 0
    delta_retired: int = 0
    delta_survivors: int = 0
    delta_blocked_stores: int = 0
    stale_kept: int = 0
    stale_serves: int = 0
    stale_dropped: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(self, field: str, count: int = 1) -> None:
        """Add ``count`` to one counter (thread-safe)."""
        with self._lock:
            setattr(self, field, getattr(self, field) + count)

    # The derived metrics are computed from a *single* locked read: reading
    # the counters one by one outside the lock can interleave with a
    # concurrent ``record`` and report a hit rate inconsistent with the
    # counters it was computed from.
    def _lookups_locked(self) -> int:
        return self.hits + self.contained + self.coalesced + self.misses

    def _hit_rate_locked(self) -> float:
        total = self._lookups_locked()
        if total == 0:
            return 0.0
        return (self.hits + self.contained + self.coalesced) / total

    @property
    def lookups(self) -> int:
        """Total lookups that were resolved (hits + contained + coalesced +
        misses)."""
        with self._lock:
            return self._lookups_locked()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a fresh remote query."""
        with self._lock:
            return self._hit_rate_locked()

    def snapshot(self) -> Dict[str, object]:
        """Plain-dictionary snapshot for the service statistics panel.

        The counters and the hit rate come from one locked read, so the rate
        always matches the counters it is printed next to."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "contained": self.contained,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "invalidations": self.invalidations,
                "delta_invalidations": self.delta_invalidations,
                "delta_retired": self.delta_retired,
                "delta_survivors": self.delta_survivors,
                "delta_blocked_stores": self.delta_blocked_stores,
                "stale_kept": self.stale_kept,
                "stale_serves": self.stale_serves,
                "stale_dropped": self.stale_dropped,
                "hit_rate": round(self._hit_rate_locked(), 4),
            }


@dataclass
class _Entry:
    """One stored result plus its insertion timestamp."""

    result: SearchResult
    stored_at: float


class _InFlight:
    """Rendezvous for callers coalescing onto one in-flight remote query."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Optional[SearchResult] = None
        self.error: Optional[BaseException] = None


class QueryResultCache:
    """Thread-safe, shared LRU+TTL cache of top-k search results.

    Parameters
    ----------
    max_entries:
        LRU capacity; the least-recently-used entry is evicted when a store
        would exceed it.
    ttl_seconds:
        Entry lifetime; ``None`` disables expiry (the simulated databases are
        immutable, so the default service configuration runs without a TTL).
    clock:
        Monotonic time source, injectable for the TTL tests.
    enable_containment:
        When true (the default), a miss may be answered from a stored
        *covering* (valid/underflow) entry of a superset query by filtering
        its rank-ordered rows through the subset query's predicates (status
        ``CONTAINED``).  Overflow entries are truncated and never answer
        subsets.  Disable to fall back to exact-match-only behaviour (the
        ablation benchmarks do).
    """

    def __init__(
        self,
        max_entries: int = 4096,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        enable_containment: bool = True,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive or None")
        self._max_entries = max_entries
        self._ttl = ttl_seconds
        self._clock = clock
        self._containment = enable_containment
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._inflight: Dict[CacheKey, _InFlight] = {}
        #: ``(namespace, system_k)`` → covering (non-overflow) entries usable
        #: for containment answering, keyed like ``_entries``; each value is
        #: the query plus its constrained-attribute signature for pruning.
        self._covering: Dict[
            Tuple[str, int], Dict[CacheKey, Tuple[SearchQuery, FrozenSet[str]]]
        ] = {}
        #: Generation counters bumped by :meth:`invalidate`: stores from
        #: queries claimed under an older generation are dropped.
        self._global_generation = 0
        self._namespace_generations: Dict[str, int] = {}
        #: Per-namespace delta sequence + bounded log of recent deltas: a
        #: store claimed at sequence ``s`` is accepted only when every delta
        #: logged after ``s`` provably cannot match the stored query.  A
        #: sequence older than the log's tail is conservatively dropped.
        self._delta_seqs: Dict[str, int] = {}
        self._delta_logs: Dict[str, Deque[Tuple[int, CatalogDelta]]] = {}
        #: Generation-stale side-store: entries flushed by :meth:`invalidate`
        #: are kept here (bounded, LRU) so :meth:`serve_stale` can answer a
        #: query while its source's breaker is open.  Delta-retired entries
        #: never enter (the delta *proves* them wrong), and a later delta
        #: matching a parked entry purges it — a stale serve can never cross
        #: an ``apply_delta`` that touched its query.
        self._stale: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self.statistics = CacheStatistics()

    #: How many recent deltas per namespace the in-flight store guard keeps.
    DELTA_LOG_LIMIT = 32

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def max_entries(self) -> int:
        """The LRU capacity."""
        return self._max_entries

    @property
    def ttl_seconds(self) -> Optional[float]:
        """Entry lifetime, or ``None`` when entries never expire."""
        return self._ttl

    @property
    def containment_enabled(self) -> bool:
        """True when covering superset entries may answer subset queries."""
        return self._containment

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key_for(namespace: str, query: SearchQuery, system_k: int) -> CacheKey:
        """The canonical cache key of one query against one interface."""
        return (namespace, system_k, query.canonical_key())

    def snapshot(self) -> Dict[str, object]:
        """Counters plus occupancy, for the service statistics panel."""
        payload = self.statistics.snapshot()
        with self._lock:
            payload["entries"] = len(self._entries)
            payload["stale_entries"] = len(self._stale)
            payload["in_flight"] = len(self._inflight)
            payload["covering_entries"] = sum(
                len(queries) for queries in self._covering.values()
            )
        payload["max_entries"] = self._max_entries
        payload["ttl_seconds"] = self._ttl
        payload["containment_enabled"] = self._containment
        return payload

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def lookup(
        self, namespace: str, query: SearchQuery, system_k: int
    ) -> Optional[SearchResult]:
        """Return the cached result for ``query``, or ``None`` on a miss.

        Kept for callers that do not care *how* the answer was found; use
        :meth:`probe` to distinguish exact hits from containment answers.
        """
        outcome = self.probe(namespace, query, system_k)
        if outcome is None:
            return None
        return outcome[0]

    def probe(
        self,
        namespace: str,
        query: SearchQuery,
        system_k: int,
        memoize: bool = True,
    ) -> Optional[Tuple[SearchResult, FetchStatus]]:
        """Resolve ``query`` from stored entries only (no remote issuance).

        Returns ``(result, status)`` where ``status`` is ``HIT`` for an exact
        entry or ``CONTAINED`` for an answer derived from a covering superset
        entry, or ``None`` when neither exists.  Either way the result is a
        fresh copy with ``elapsed_seconds=0.0`` — a cached answer costs no
        round trip — and with copied rows so callers can never mutate the
        stored entry.  Misses are *not* counted here (:meth:`fetch` owns miss
        accounting); hits and containment answers are.

        ``memoize=False`` makes the probe strictly read-only: a derived
        containment answer is returned but not stored under ``query``'s key.
        Cache-bypassing callers use it so their one-off queries never churn
        the LRU.
        """
        key = self.key_for(namespace, query, system_k)
        with self._lock:
            entry = self._live_entry(key)
            if entry is not None:
                result, status = entry.result, FetchStatus.HIT
            else:
                derived = self._contained_answer_locked(
                    namespace, query, system_k, key, memoize=memoize
                )
                if derived is None:
                    return None
                result, status = derived, FetchStatus.CONTAINED
        self.statistics.record(
            "hits" if status is FetchStatus.HIT else "contained"
        )
        return self._replay(result), status

    def store(
        self, namespace: str, query: SearchQuery, system_k: int, result: SearchResult
    ) -> None:
        """Insert one result, evicting the LRU tail past ``max_entries``."""
        key = self.key_for(namespace, query, system_k)
        with self._lock:
            self._store_locked(key, query, result)

    def fetch(
        self,
        namespace: str,
        query: SearchQuery,
        system_k: int,
        compute: Callable[[], SearchResult],
    ) -> Tuple[SearchResult, FetchStatus]:
        """Resolve ``query`` through the cache, coalescing concurrent misses.

        Exactly one caller per key runs ``compute`` (the remote query); every
        concurrent caller blocks on that computation and shares its result.
        When the owning caller fails, one waiter at a time retries ownership,
        so a transient remote failure never poisons the key.

        Returns the result plus how it was satisfied; ``MISS`` results carry
        the real ``elapsed_seconds``; ``HIT``/``CONTAINED``/``COALESCED``
        results cost zero.
        """
        key = self.key_for(namespace, query, system_k)
        while True:
            with self._lock:
                entry = self._live_entry(key)
                if entry is not None:
                    self.statistics.record("hits")
                    return self._replay(entry.result), FetchStatus.HIT
                derived = self._contained_answer_locked(namespace, query, system_k, key)
                if derived is not None:
                    self.statistics.record("contained")
                    return self._replay(derived), FetchStatus.CONTAINED
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    # An invalidation between now and the store means the
                    # result we are about to compute may be stale: remember
                    # the generation and delta sequence the query began under.
                    generation = self._generation_locked(namespace)
                    delta_seq = self._delta_seqs.get(namespace, 0)
                    break
            # Another caller owns the remote query for this key: wait for it.
            flight.done.wait()
            if flight.error is None and flight.result is not None:
                self.statistics.record("coalesced")
                return self._replay(flight.result), FetchStatus.COALESCED
            # The owner failed — loop back and contend for ownership.

        try:
            result = compute()
        except BaseException as error:
            flight.error = error
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()
            raise
        flight.result = result
        with self._lock:
            if self._store_allowed_locked(namespace, query, generation, delta_seq):
                self._store_locked(key, query, result)
            self._inflight.pop(key, None)
        flight.done.set()
        self.statistics.record("misses")
        # The stored entry must never alias rows a caller can mutate, so the
        # MISS caller also gets copied rows (but keeps the real latency).
        return (
            replace(result, rows=tuple(dict(row) for row in result.rows)),
            FetchStatus.MISS,
        )

    def fetch_many(
        self,
        namespace: str,
        queries: Sequence[SearchQuery],
        system_k: int,
        compute_many: Callable[[List[SearchQuery]], List[SearchResult]],
    ) -> List[Tuple[SearchResult, FetchStatus]]:
        """Batched :meth:`fetch`: resolve a whole query group through the
        cache with at most one ``compute_many`` round trip.

        Under one lock pass, every query is classified: live entries are
        ``HIT``\\ s, queries a stored covering superset entry can answer are
        ``CONTAINED``, keys another caller is already computing are coalesced
        onto that caller's flight, duplicates within the batch ride on the
        batch's own computation (the later occurrences are ``HIT``\\ s, exactly
        as in the sequential path where the first store answers the repeat),
        and the remaining keys are claimed by this caller.  The claimed
        queries are then computed in a single ``compute_many`` call — this is
        what lets a batched interface amortize planning work across a
        parallel group — stored, and published to any coalesced waiters.

        Returns ``(result, status)`` pairs aligned with ``queries``.  When
        ``compute_many`` raises, every claimed flight is failed and the error
        propagates; no partial results are returned.
        """
        materialized = list(queries)
        keys = [self.key_for(namespace, query, system_k) for query in materialized]
        outcomes: List[Optional[Tuple[SearchResult, FetchStatus]]] = [None] * len(keys)
        owned: "OrderedDict[CacheKey, _InFlight]" = OrderedDict()
        owner_position: Dict[CacheKey, int] = {}
        duplicates: List[Tuple[int, CacheKey]] = []
        waiting: List[Tuple[int, CacheKey, _InFlight]] = []
        hits = 0
        contained = 0
        with self._lock:
            generation = self._generation_locked(namespace)
            delta_seq = self._delta_seqs.get(namespace, 0)
            for position, key in enumerate(keys):
                entry = self._live_entry(key)
                if entry is not None:
                    outcomes[position] = (self._replay(entry.result), FetchStatus.HIT)
                    hits += 1
                    continue
                derived = self._contained_answer_locked(
                    namespace, materialized[position], system_k, key
                )
                if derived is not None:
                    outcomes[position] = (
                        self._replay(derived),
                        FetchStatus.CONTAINED,
                    )
                    contained += 1
                    continue
                if key in owned:
                    duplicates.append((position, key))
                    continue
                flight = self._inflight.get(key)
                if flight is not None:
                    waiting.append((position, key, flight))
                    continue
                flight = _InFlight()
                self._inflight[key] = flight
                owned[key] = flight
                owner_position[key] = position
        if hits:
            self.statistics.record("hits", hits)
        if contained:
            self.statistics.record("contained", contained)

        owner_results: Dict[CacheKey, SearchResult] = {}
        if owned:
            batch = [materialized[owner_position[key]] for key in owned]
            try:
                results = compute_many(batch)
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"compute_many returned {len(results)} results "
                        f"for {len(batch)} queries"
                    )
            except BaseException as error:
                for flight in owned.values():
                    flight.error = error
                with self._lock:
                    for key in owned:
                        self._inflight.pop(key, None)
                for flight in owned.values():
                    flight.done.set()
                raise
            for flight, result in zip(owned.values(), results):
                flight.result = result
            with self._lock:
                for key, result in zip(owned, results):
                    query = materialized[owner_position[key]]
                    if self._store_allowed_locked(
                        namespace, query, generation, delta_seq
                    ):
                        self._store_locked(key, query, result)
                    self._inflight.pop(key, None)
            for flight in owned.values():
                flight.done.set()
            self.statistics.record("misses", len(results))
            for key, result in zip(owned, results):
                owner_results[key] = result
                outcomes[owner_position[key]] = (
                    replace(result, rows=tuple(dict(row) for row in result.rows)),
                    FetchStatus.MISS,
                )

        if duplicates:
            for position, key in duplicates:
                outcomes[position] = (self._replay(owner_results[key]), FetchStatus.HIT)
            self.statistics.record("hits", len(duplicates))

        for position, key, flight in waiting:
            flight.done.wait()
            if flight.error is None and flight.result is not None:
                self.statistics.record("coalesced")
                outcomes[position] = (self._replay(flight.result), FetchStatus.COALESCED)
            else:
                # The owning caller failed: contend for ownership of this one
                # key through the single-query path.
                query = materialized[position]
                outcomes[position] = self.fetch(
                    namespace,
                    query,
                    system_k,
                    lambda query=query: compute_many([query])[0],
                )

        complete: List[Tuple[SearchResult, FetchStatus]] = []
        for outcome in outcomes:
            assert outcome is not None, "fetch_many left a query unresolved"
            complete.append(outcome)
        return complete

    # ------------------------------------------------------------------ #
    # Persistence support
    # ------------------------------------------------------------------ #
    def export_entries(self) -> List[Tuple[str, int, SearchResult]]:
        """Stable snapshot of the live entries for persistence adapters.

        One ``(namespace, system_k, result)`` triple per entry in LRU order
        (least recently used first, so re-storing in order reproduces the
        eviction order).  The result carries its query, which is all a loader
        needs to re-:meth:`store` the entry.  Expired entries are skipped
        without being counted as expirations.
        """
        now = self._clock()
        with self._lock:
            return [
                (key[0], key[1], entry.result)
                for key, entry in self._entries.items()
                if self._ttl is None or now - entry.stored_at < self._ttl
            ]

    def export_snapshot(
        self,
    ) -> Tuple[List[Tuple[str, int, SearchResult]], Dict[str, Tuple[int, int]]]:
        """:meth:`export_entries` plus each exported namespace's generation
        token, captured under one lock acquisition.

        Persistence adapters need the pairing to be atomic: a generation
        read *after* a racing ``invalidate`` would stamp already-flushed
        entries with the post-flush token, re-legitimizing them at the next
        warm load."""
        now = self._clock()
        with self._lock:
            entries = [
                (key[0], key[1], entry.result)
                for key, entry in self._entries.items()
                if self._ttl is None or now - entry.stored_at < self._ttl
            ]
            generations = {
                namespace: self._generation_locked(namespace)
                for namespace in {namespace for namespace, _, _ in entries}
            }
        return entries, generations

    # ------------------------------------------------------------------ #
    # Invalidation
    # ------------------------------------------------------------------ #
    def generation(self, namespace: str) -> Tuple[int, int]:
        """The namespace's current generation token (global, namespace).

        Bumped by every :meth:`invalidate` covering the namespace.  Derived
        caches — the shared rerank feed store folds this into its feed
        stamps — compare tokens to detect that their source answers were
        flushed and must not be reused."""
        with self._lock:
            return self._generation_locked(namespace)

    def invalidate(self, namespace: Optional[str] = None) -> int:
        """Drop every entry (or every entry of one namespace); returns the
        number removed.

        The namespace's generation counter is bumped, so in-flight queries
        that began *before* the invalidation complete normally for their
        callers but do **not** re-store their results — without the counter a
        slow pre-invalidation query could resurrect a stale entry after the
        flush.

        Flushed entries are parked in the bounded stale side-store: they may
        no longer answer normal lookups, but :meth:`serve_stale` can replay
        them (marked degraded) while their source is unreachable."""
        parked = 0
        with self._lock:
            if namespace is None:
                removed = len(self._entries)
                for key, entry in self._entries.items():
                    self._park_stale_locked(key, entry)
                parked = removed
                self._entries.clear()
                self._covering.clear()
                self._global_generation += 1
            else:
                doomed = [key for key in self._entries if key[0] == namespace]
                for key in doomed:
                    self._park_stale_locked(key, self._entries[key])
                    del self._entries[key]
                    self._forget_covering_locked(key)
                removed = len(doomed)
                parked = removed
                self._namespace_generations[namespace] = (
                    self._namespace_generations.get(namespace, 0) + 1
                )
        if removed:
            self.statistics.record("invalidations", removed)
        if parked:
            self.statistics.record("stale_kept", parked)
        return removed

    def invalidate_delta(
        self, namespace: str, delta: CatalogDelta
    ) -> List[CacheKey]:
        """Retire only the entries of ``namespace`` whose query ``delta`` can
        match; returns the retired keys (for spill pruning).

        The namespace generation is **not** bumped — surviving entries stay
        servable and derived caches keyed on the generation stay warm.
        In-flight queries claimed before this call are covered by the delta
        log: their store is dropped iff the delta could match their query.
        """
        if delta.is_empty:
            return []
        retired: List[CacheKey] = []
        survivors = 0
        stale_purged = 0
        with self._lock:
            sequence = self._delta_seqs.get(namespace, 0) + 1
            self._delta_seqs[namespace] = sequence
            log = self._delta_logs.get(namespace)
            if log is None:
                log = deque(maxlen=self.DELTA_LOG_LIMIT)
                self._delta_logs[namespace] = log
            log.append((sequence, delta))
            for key in [k for k in self._entries if k[0] == namespace]:
                entry = self._entries[key]
                if delta.may_match_query(entry.result.query):
                    del self._entries[key]
                    self._forget_covering_locked(key)
                    retired.append(key)
                else:
                    survivors += 1
            # A stale parked entry the delta could match must never be
            # replayed by serve_stale: its rows are provably out of date.
            for key in [k for k in self._stale if k[0] == namespace]:
                if delta.may_match_query(self._stale[key].result.query):
                    del self._stale[key]
                    stale_purged += 1
        self.statistics.record("delta_invalidations")
        if stale_purged:
            self.statistics.record("stale_dropped", stale_purged)
        if retired:
            self.statistics.record("delta_retired", len(retired))
        if survivors:
            self.statistics.record("delta_survivors", survivors)
        return retired

    # ------------------------------------------------------------------ #
    # Stale serving (graceful degradation)
    # ------------------------------------------------------------------ #
    def serve_stale(
        self, namespace: str, query: SearchQuery, system_k: int
    ) -> Optional[SearchResult]:
        """Replay a generation-stale parked entry for ``query``, or ``None``.

        Only used when the live source cannot answer (open breaker, retries
        exhausted): the returned copy is marked ``stale`` *and* ``degraded``
        and is forced to ``OVERFLOW`` by the caller's contract — a stale
        answer must never claim to cover its query, so no algorithm builds
        durable state (dense regions, feeds, emissions) from it.  TTL-expired
        parked entries are dropped, and entries a catalog delta touched were
        already purged at ``invalidate_delta`` time.
        """
        key = self.key_for(namespace, query, system_k)
        with self._lock:
            entry = self._stale.get(key)
            if entry is None:
                return None
            if self._ttl is not None and self._clock() - entry.stored_at >= self._ttl:
                del self._stale[key]
                self.statistics.record("stale_dropped")
                return None
            self._stale.move_to_end(key)
            result = entry.result
        self.statistics.record("stale_serves")
        stale = self._replay(result)
        return replace(
            stale,
            outcome=Outcome.OVERFLOW,
            degraded=True,
            stale=True,
        )

    def _park_stale_locked(self, key: CacheKey, entry: _Entry) -> None:
        """Move one flushed entry into the bounded stale side-store."""
        if entry.result.degraded or entry.result.stale:
            return  # never replay an answer that was itself degraded
        self._stale[key] = entry
        self._stale.move_to_end(key)
        while len(self._stale) > self._max_entries:
            self._stale.popitem(last=False)
            self.statistics.record("stale_dropped")

    # ------------------------------------------------------------------ #
    # Internals (call with the lock held)
    # ------------------------------------------------------------------ #
    def _generation_locked(self, namespace: str) -> Tuple[int, int]:
        """The generation token a store must match to be accepted: bumped
        globally by a full invalidation, per namespace by a scoped one."""
        return (
            self._global_generation,
            self._namespace_generations.get(namespace, 0),
        )

    def _store_allowed_locked(
        self,
        namespace: str,
        query: SearchQuery,
        generation: Tuple[int, int],
        delta_seq: int,
    ) -> bool:
        """May a result claimed under ``(generation, delta_seq)`` be stored?

        A full invalidation (generation mismatch) always drops the store.  A
        delta logged after the claim drops it only when the delta could match
        the stored query; a claim older than the log's tail is dropped
        conservatively (the trimmed deltas can no longer be checked)."""
        if self._generation_locked(namespace) != generation:
            return False
        current = self._delta_seqs.get(namespace, 0)
        if current == delta_seq:
            return True
        log = self._delta_logs.get(namespace)
        if log is None or not log or log[0][0] > delta_seq + 1:
            self.statistics.record("delta_blocked_stores")
            return False
        for sequence, delta in log:
            if sequence > delta_seq and delta.may_match_query(query):
                self.statistics.record("delta_blocked_stores")
                return False
        return True

    def _live_entry(self, key: CacheKey) -> Optional[_Entry]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if self._ttl is not None and self._clock() - entry.stored_at >= self._ttl:
            del self._entries[key]
            self._forget_covering_locked(key)
            self.statistics.record("expirations")
            return None
        self._entries.move_to_end(key)
        return entry

    def _store_locked(
        self,
        key: CacheKey,
        query: SearchQuery,
        result: SearchResult,
        stored_at: Optional[float] = None,
    ) -> None:
        if result.degraded or result.stale:
            # A partial or stale answer is request-scoped by design: caching
            # it would keep serving the degraded rows after the source heals
            # and break byte-identity with the fault-free run.
            return
        stamp = self._clock() if stored_at is None else stored_at
        self._entries[key] = _Entry(result=result, stored_at=stamp)
        self._entries.move_to_end(key)
        # A fresh answer supersedes any parked stale copy of the same key.
        self._stale.pop(key, None)
        scope = (key[0], key[1])
        if result.covers_query:
            # Only covering (valid/underflow) results may answer subset
            # queries: an overflow result is truncated at ``k`` and proves
            # nothing about which subset tuples the database holds.  The
            # attribute signature rides along for cheap candidate pruning.
            self._covering.setdefault(scope, {})[key] = (
                query,
                frozenset(query.constrained_attributes),
            )
        else:
            self._forget_covering_locked(key)
        while len(self._entries) > self._max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._forget_covering_locked(evicted)
            self.statistics.record("evictions")

    def _forget_covering_locked(self, key: CacheKey) -> None:
        scope = (key[0], key[1])
        queries = self._covering.get(scope)
        if queries is not None:
            queries.pop(key, None)
            if not queries:
                del self._covering[scope]

    def _contained_answer_locked(
        self,
        namespace: str,
        query: SearchQuery,
        system_k: int,
        key: CacheKey,
        memoize: bool = True,
    ) -> Optional[SearchResult]:
        """Derive ``query``'s answer from a stored covering superset entry.

        A covering (valid/underflow) entry for ``Q' ⊇ Q`` holds *every* tuple
        matching ``Q'`` in hidden-rank order, so the tuples matching ``Q``
        are exactly the entry rows passing ``Q.matches`` — in the same rank
        order the database itself would return.  Truncating at ``system_k``
        reproduces the overflow/valid/underflow trichotomy bit for bit.

        With ``memoize`` (the default) the derived result is stored under
        ``key`` — inheriting the *source* entry's ``stored_at`` so derivation
        never extends the TTL freshness horizon of the underlying
        observation — and repeats of the subset query become exact hits.
        Cache-bypassing callers (the crawler) pass ``memoize=False``: their
        effectively unique queries would only churn the LRU.  Returns
        ``None`` when containment is disabled or no live covering superset
        exists.
        """
        if not self._containment:
            return None
        candidates = self._covering.get((namespace, system_k))
        if not candidates:
            return None
        constrained = set(query.constrained_attributes)
        for covering_key, (covering_query, covering_names) in list(candidates.items()):
            # Cheap signature pre-filter: a covering query can only contain
            # ``query`` if every attribute it constrains is also constrained
            # by ``query`` — prunes most candidates before the full check.
            if not covering_names <= constrained:
                continue
            if not covering_query.contains(query):
                continue
            entry = self._live_entry(covering_key)
            if entry is None:  # expired between store and probe
                continue
            matched = [row for row in entry.result.rows if query.matches(row)]
            overflow = len(matched) > system_k
            rows = tuple(dict(row) for row in matched[:system_k])
            if overflow:
                outcome = Outcome.OVERFLOW
            elif rows:
                outcome = Outcome.VALID
            else:
                outcome = Outcome.UNDERFLOW
            derived = SearchResult(
                query=query,
                rows=rows,
                outcome=outcome,
                system_k=system_k,
                elapsed_seconds=0.0,
            )
            if memoize:
                self._store_locked(key, query, derived, stored_at=entry.stored_at)
            return derived
        return None

    @staticmethod
    def _replay(result: SearchResult) -> SearchResult:
        """A defensive copy of a stored result, at zero simulated cost."""
        return replace(
            result,
            rows=tuple(dict(row) for row in result.rows),
            elapsed_seconds=0.0,
        )


class CachingInterface(TopKInterface):
    """Wrapper adding shared result caching to any :class:`TopKInterface`.

    The counterpart of :class:`~repro.webdb.interface.InstrumentedInterface`:
    where that wrapper *counts* queries, this one *avoids* them.  Several
    wrappers may share one :class:`QueryResultCache`; each talks to it under
    its own namespace (derived from the inner interface's ``name`` when not
    given explicitly).
    """

    def __init__(
        self,
        inner: TopKInterface,
        cache: Optional[QueryResultCache] = None,
        namespace: Optional[str] = None,
    ) -> None:
        self._inner = inner
        self._cache = cache if cache is not None else QueryResultCache()
        self._namespace = namespace or default_namespace(inner)

    @property
    def schema(self) -> Schema:
        return self._inner.schema

    @property
    def system_k(self) -> int:
        return self._inner.system_k

    @property
    def key_column(self) -> str:
        return self._inner.key_column

    @property
    def inner(self) -> TopKInterface:
        """The wrapped interface."""
        return self._inner

    @property
    def cache(self) -> QueryResultCache:
        """The (possibly shared) result cache."""
        return self._cache

    @property
    def namespace(self) -> str:
        """This wrapper's namespace within the shared cache."""
        return self._namespace

    def search(self, query: SearchQuery) -> SearchResult:
        result, _ = self._cache.fetch(
            self._namespace,
            query,
            self._inner.system_k,
            lambda: self._inner.search(query),
        )
        return result

    def queries_issued(self) -> int:
        """Queries the *inner* interface actually served (hits excluded)."""
        return self._inner.queries_issued()


#: Generic default names that cannot distinguish two interfaces sharing one
#: cache — they fall through to the identity-derived namespace.
_GENERIC_NAMES = frozenset({"webdb"})


def default_namespace(interface: TopKInterface) -> str:
    """Stable cache namespace for an interface: its ``name`` when it has a
    distinctive one, otherwise an identity-derived fallback.

    The generic ``HiddenWebDatabase`` default name (``"webdb"``) is *not*
    used: two default-named databases sharing one cache would otherwise serve
    each other's results.  Callers sharing a cache across interfaces should
    either name their interfaces uniquely or pass an explicit namespace."""
    name = getattr(interface, "name", None)
    if isinstance(name, str) and name and name not in _GENERIC_NAMES:
        return name
    return f"iface-{id(interface):x}"
