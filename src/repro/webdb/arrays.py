"""Numeric buffer backends for the columnar storage layer.

The columnar catalog (:mod:`repro.webdb.indexes`) stores numeric columns,
sorted indexes, and rank arrays in one of three representations:

* ``"list"`` — plain Python lists of objects, the seed reference layout.
  Kept bit-for-bit identical to the original implementation and selected via
  :attr:`~repro.config.DatabaseConfig.columnar_backend` for differential
  testing;
* ``"array"`` — :mod:`array` buffers (``array('d')`` for floats,
  ``array('q')`` for rank positions and integer columns): 8 bytes per value
  instead of an 8-byte pointer plus a boxed Python object.  Always available
  (standard library only);
* ``"numpy"`` — the same compact buffers exposed as ``numpy`` views so the
  execution engine's tight loops (range filters, candidate sorting) run as
  vectorized C loops.  Only selectable when numpy is importable.

``"buffer"`` (the default knob value) resolves to ``"numpy"`` when numpy is
importable and ``"array"`` otherwise, so the compact layout never becomes a
hard dependency.  Setting the environment variable ``REPRO_DISABLE_NUMPY``
to a non-empty value forces the stdlib fallback even when numpy is
installed (used by tests and benchmark A/B runs).

The helpers in this module are the *only* place backend types are
dispatched: the engine asks for a range filter / candidate sorter / position
space and receives a closure appropriate for whatever buffer type the
catalog handed it.
"""

from __future__ import annotations

import os
from array import array
from typing import Callable, List, Optional, Sequence, Tuple, Union

try:  # pragma: no cover - exercised via both branches in CI matrices
    if os.environ.get("REPRO_DISABLE_NUMPY"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Backend names accepted by the ``columnar_backend`` knobs.
BACKEND_NAMES: Tuple[str, ...] = ("buffer", "list", "array", "numpy")

#: A block filter: rank positions in → surviving rank positions out.
BlockFilter = Callable[[Sequence[int]], Sequence[int]]

#: Typecode for rank positions / integer columns: signed 64-bit.
INT_TYPECODE = "q"


def numpy_available() -> bool:
    """True when the numpy-accelerated backend can be selected."""
    return _np is not None


def resolve_backend(name: str) -> str:
    """Resolve a backend knob value to a concrete backend.

    ``"buffer"`` picks ``"numpy"`` when importable and ``"array"``
    otherwise; explicit names pass through (``"numpy"`` raises when numpy is
    unavailable so a forced configuration fails loudly instead of silently
    degrading).
    """
    if name == "buffer":
        return "numpy" if _np is not None else "array"
    if name in ("list", "array"):
        return name
    if name == "numpy":
        if _np is None:
            raise ValueError(
                "columnar backend 'numpy' requested but numpy is not importable"
            )
        return "numpy"
    raise ValueError(
        f"unknown columnar backend {name!r}; expected one of: {', '.join(BACKEND_NAMES)}"
    )


# ---------------------------------------------------------------------- #
# Buffer constructors
# ---------------------------------------------------------------------- #
def float_buffer(values: Sequence[float], backend: str):
    """Pack ``values`` (already floats) into the backend's float layout."""
    if backend == "list":
        return list(values)
    packed = values if isinstance(values, array) else array("d", values)
    if backend == "numpy":
        return _np.frombuffer(packed, dtype=_np.float64)
    return packed


def int_buffer(values: Sequence[int], backend: str):
    """Pack ``values`` (rank positions) into the backend's integer layout."""
    if backend == "list":
        return list(values)
    packed = values if isinstance(values, array) else array(INT_TYPECODE, values)
    if backend == "numpy":
        return _np.frombuffer(packed, dtype=_np.int64)
    return packed


def is_float_buffer(column: object) -> bool:
    """True when ``column`` is a compact float buffer (not an object list)."""
    if isinstance(column, array):
        return column.typecode == "d"
    return _np is not None and isinstance(column, _np.ndarray)


def is_int_buffer(column: object) -> bool:
    """True when ``column`` is a compact integer buffer."""
    if isinstance(column, array):
        return column.typecode == INT_TYPECODE
    return _np is not None and isinstance(column, _np.ndarray)


def pack_raw_column(values: List[object], backend: str) -> object:
    """Try to replace an object column with a compact raw buffer.

    Only columns that are *losslessly* representable move into buffers:
    every value must be exactly ``float`` (no ``bool``, no ints, no NaN —
    NaN is excluded because a materialized NaN would be a fresh object and
    ``nan == nan`` is false, breaking byte-identity with the reference
    engine) or exactly ``int`` within signed-64-bit range.  Anything else
    keeps the original list so materialized rows carry the original
    objects.

    A single fused pass decides and converts together, bailing on the first
    non-conforming value.  Raw buffers are always stdlib ``array`` objects —
    even under the numpy backend — so materialized rows contain plain Python
    ``float``/``int`` values (a ``np.float64`` would not be JSON
    serializable and would not be byte-identical downstream); the numpy
    backend takes zero-copy ndarray *views* of these buffers for its
    vectorized loops.
    """
    if backend == "list" or not values:
        return values
    first = values[0]
    if type(first) is float:
        packed_floats = array("d")
        append = packed_floats.append
        for value in values:
            # ``value != value`` is the NaN check, fused into the same pass.
            if type(value) is not float or value != value:
                return values
            append(value)
        return packed_floats
    if type(first) is int:
        packed_ints = array(INT_TYPECODE)
        append_int = packed_ints.append
        for value in values:
            if type(value) is not int:
                return values
            try:
                append_int(value)
            except OverflowError:
                return values
        return packed_ints
    return values


# ---------------------------------------------------------------------- #
# Engine primitives
# ---------------------------------------------------------------------- #
def position_space(size: int, backend: str) -> Sequence[int]:
    """The full rank-position sequence scans iterate, in backend layout.

    ``numpy`` gets a materialized ``arange`` whose block slices are
    zero-copy views feeding the vectorized filters; the other backends keep
    the constant-memory ``range``.
    """
    if backend == "numpy":
        return _np.arange(size, dtype=_np.int64)
    return range(size)


def make_range_filter(
    column: object,
    lower: float,
    upper: float,
    include_lower: bool,
    include_upper: bool,
) -> BlockFilter:
    """Block filter keeping the positions whose column value lies in range.

    Dispatches on the column's buffer type: numpy arrays get a single
    vectorized comparison per block; lists and ``array('d')`` buffers keep
    the C-level list-comprehension loop of the reference implementation.
    """
    if _np is not None and isinstance(column, _np.ndarray):
        np = _np

        def vector_filter(
            ranks: Sequence[int],
            c=column,
            lo=lower,
            hi=upper,
            il=include_lower,
            iu=include_upper,
        ) -> Sequence[int]:
            idx = ranks if isinstance(ranks, np.ndarray) else np.asarray(ranks, dtype=np.int64)
            values = c[idx]
            mask = (values >= lo) if il else (values > lo)
            mask &= (values <= hi) if iu else (values < hi)
            return idx[mask]

        return vector_filter
    if include_lower and include_upper:
        return lambda ranks, c=column, lo=lower, hi=upper: [
            i for i in ranks if lo <= c[i] <= hi
        ]
    if include_lower:
        return lambda ranks, c=column, lo=lower, hi=upper: [
            i for i in ranks if lo <= c[i] < hi
        ]
    if include_upper:
        return lambda ranks, c=column, lo=lower, hi=upper: [
            i for i in ranks if lo < c[i] <= hi
        ]
    return lambda ranks, c=column, lo=lower, hi=upper: [
        i for i in ranks if lo < c[i] < hi
    ]


def sorted_positions(ranks_by_value: object, start: int, stop: int) -> Sequence[int]:
    """The rank positions of ``ranks_by_value[start:stop]``, sorted ascending.

    This is the candidate-extraction hot path: under numpy it is a C sort of
    an int64 slice instead of a Python ``sorted`` over boxed ints.
    """
    if _np is not None and isinstance(ranks_by_value, _np.ndarray):
        return _np.sort(ranks_by_value[start:stop])
    return sorted(ranks_by_value[start:stop])


def stable_argsort(values: Sequence[float], backend: str):
    """``(sorted values, rank positions)`` for a float column, ties broken by
    rank position — exactly the order ``sorted(zip(values, range(n)))``
    produces in the reference implementation."""
    if backend == "numpy":
        packed = values if isinstance(values, _np.ndarray) else _np.asarray(values, dtype=_np.float64)
        order = _np.argsort(packed, kind="stable")
        return packed[order], order.astype(_np.int64, copy=False)
    pairs = sorted(zip(values, range(len(values))))
    sorted_values = [value for value, _ in pairs]
    positions = [rank for _, rank in pairs]
    if backend == "array":
        return array("d", sorted_values), array(INT_TYPECODE, positions)
    return sorted_values, positions


def nan_free(column: object) -> bool:
    """True when a float buffer holds no NaN (vectorized under numpy)."""
    if _np is not None and isinstance(column, _np.ndarray):
        return not bool(_np.isnan(column).any())
    return all(value == value for value in column)
