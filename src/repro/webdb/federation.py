"""Sharded, federated hidden-web sources.

Real deployments of the paper's scenario rarely sit on one monolithic
database: a large catalog is horizontally partitioned across shards, each
exposing its own top-k interface (possibly with different engines, ``k``
values, and latencies).  This module supplies the two pieces that let the
rest of the library stay shard-agnostic:

* :class:`ShardedCatalog` — partitions one catalog into N disjoint shard
  catalogs, either **by hidden rank** (round-robin in hidden-rank order, so
  every shard sees the same score distribution) or **by attribute range**
  (contiguous quantile slices of one numeric attribute, which enables shard
  pruning for range-filtered queries);
* :class:`FederatedInterface` — presents the shard databases as a single
  :class:`~repro.webdb.interface.TopKInterface`.  A ``search`` **scatters**
  the query to the non-pruned shards, **gathers** their top-k pages, and
  merges them by the (shared) hidden system ranking into one page that is
  *byte-identical* to what the unsharded reference database would return.

Correctness of the scatter-gather merge:

* every shard's ``k`` is required to be ≥ the federated ``k``, so the global
  top-k of any query is contained in the union of the per-shard top-k pages;
* shard catalogs are disjoint by construction and the merge comparator is the
  same ``(score, str(key))`` used by :class:`HiddenWebDatabase`, so the merged
  order equals the unsharded hidden-rank order exactly;
* the outcome trichotomy is preserved: any shard overflow implies the global
  query overflows (that shard alone has unreturned matches); otherwise every
  matching tuple was gathered, and the total count classifies the result.

The facade can additionally cache per shard: with an attached
:class:`~repro.webdb.cache.QueryResultCache`, each shard's answers are stored
under that shard's own namespace, so invalidating one shard never retires a
sibling shard's entries.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace as dataclass_replace
from typing import Callable, TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.sqlstore.store import SQLiteTupleStore

from repro.dataset.schema import Schema
from repro.dataset.table import ColumnTable
from repro.exceptions import (
    DeadlineExceededError,
    QueryError,
    SourceUnavailableError,
)
from repro.webdb.cache import FetchStatus, QueryResultCache, default_namespace
from repro.webdb.database import HiddenWebDatabase, stream_sorted_columns
from repro.webdb.delta import CatalogDelta, merge_shard_deltas
from repro.webdb.faults import FaultInjector, FaultPlan, find_injector
from repro.webdb.indexes import ColumnarCatalog
from repro.webdb.interface import (
    InstrumentedInterface,
    Outcome,
    SearchResult,
    TopKInterface,
)
from repro.webdb.latency import LatencyModel
from repro.webdb.query import RangePredicate, SearchQuery
from repro.webdb.ranking import SystemRankingFunction
from repro.webdb.resilience import (
    Deadline,
    ResilienceConfig,
    ResilienceStatistics,
    SourceGuard,
)

Row = Dict[str, object]


@dataclass(frozen=True)
class ShardSpec:
    """Optional per-shard overrides (heterogeneous federations).

    ``None`` fields fall back to the federation-wide defaults.  ``system_k``
    may only *raise* a shard's page size above the federated ``k`` — the
    merge is provably complete only when every shard returns at least the
    federated ``k`` tuples per query.  ``fault_plan`` gives the shard its own
    deterministic fault schedule (overriding any federation-wide plan).
    """

    system_k: Optional[int] = None
    engine: Optional[str] = None
    latency: Optional[LatencyModel] = None
    fault_plan: Optional[FaultPlan] = None


def _resolve_shard_spec(
    spec: Optional[ShardSpec],
    index: int,
    *,
    system_k: int,
    engine: str,
    latency_mean: float,
    latency_jitter: float,
    latency_seed: int,
    latency_sleep: bool,
    fault_plan: Optional[FaultPlan] = None,
) -> Tuple[int, str, LatencyModel, Optional[FaultPlan]]:
    """Resolve one shard's effective ``(k, engine, latency, fault plan)``
    from its optional :class:`ShardSpec` and the federation-wide defaults."""
    shard_k = spec.system_k if spec and spec.system_k is not None else system_k
    if shard_k < system_k:
        raise QueryError(
            f"shard {index} has system_k={shard_k} below the federated "
            f"k={system_k}; the merged top-k would be incomplete"
        )
    shard_engine = spec.engine if spec and spec.engine is not None else engine
    if spec and spec.latency is not None:
        latency = spec.latency
    else:
        latency = LatencyModel(
            mean_seconds=latency_mean,
            jitter=latency_jitter,
            sleep=latency_sleep,
            seed=latency_seed + index,
        )
    if spec and spec.fault_plan is not None:
        shard_plan: Optional[FaultPlan] = spec.fault_plan
    elif fault_plan is not None and not fault_plan.is_noop:
        # Shard-specific seed offset: shards draw independent fault streams
        # from one federation-wide plan, yet each stream stays replayable.
        shard_plan = dataclass_replace(fault_plan, seed=fault_plan.seed + index)
    else:
        shard_plan = None
    return shard_k, shard_engine, latency, shard_plan


class ShardedCatalog:
    """One catalog partitioned into N disjoint shard catalogs.

    Instances are produced by :meth:`partition`; ``tables[i]`` is shard *i*'s
    catalog and — for attribute partitioning — ``partitions[i]`` is the range
    of the partition attribute that shard *i* owns (used for shard pruning).
    """

    def __init__(
        self,
        tables: Sequence[ColumnTable],
        schema: Schema,
        shard_by: str,
        partitions: Optional[Sequence[Optional[RangePredicate]]] = None,
    ) -> None:
        if not tables:
            raise QueryError("a sharded catalog needs at least one shard")
        if partitions is not None and len(partitions) != len(tables):
            raise QueryError("partitions must align with shard tables")
        self.tables: List[ColumnTable] = list(tables)
        self.schema = schema
        self.shard_by = shard_by
        self.partitions: Optional[List[Optional[RangePredicate]]] = (
            list(partitions) if partitions is not None else None
        )

    @property
    def shard_count(self) -> int:
        """Number of shards the catalog was split into."""
        return len(self.tables)

    # ------------------------------------------------------------------ #
    @staticmethod
    def partition(
        catalog: ColumnTable,
        schema: Schema,
        system_ranking: SystemRankingFunction,
        shards: int,
        by: str = "rank",
    ) -> "ShardedCatalog":
        """Partition ``catalog`` into ``shards`` disjoint shard catalogs.

        ``by="rank"`` deals tuples round-robin in hidden-rank order;
        any other value names a numeric attribute and splits the catalog
        into contiguous quantile ranges of that attribute.
        """
        if shards <= 0:
            raise QueryError("shard count must be positive")
        if by == "rank":
            return ShardedCatalog._by_rank(catalog, schema, system_ranking, shards)
        return ShardedCatalog._by_attribute(catalog, schema, by, shards)

    @staticmethod
    def _by_rank(
        catalog: ColumnTable,
        schema: Schema,
        system_ranking: SystemRankingFunction,
        shards: int,
    ) -> "ShardedCatalog":
        rows = sorted(catalog.to_rows(), key=system_ranking.sort_key(schema.key))
        columns = catalog.columns
        buckets: List[List[Row]] = [[] for _ in range(shards)]
        for position, row in enumerate(rows):
            buckets[position % shards].append(row)
        tables = [
            ColumnTable.from_rows(bucket, columns=columns)
            for bucket in buckets
            if bucket
        ]
        return ShardedCatalog(tables, schema, shard_by="rank")

    @staticmethod
    def _by_attribute(
        catalog: ColumnTable,
        schema: Schema,
        attribute: str,
        shards: int,
    ) -> "ShardedCatalog":
        schema.require_numeric(attribute)
        rows = catalog.to_rows()
        values = sorted(float(row[attribute]) for row in rows)  # type: ignore[arg-type]
        if not values:
            raise QueryError("cannot partition an empty catalog")
        # Quantile boundaries, deduplicated: a heavily skewed attribute can
        # yield fewer distinct cut points than requested shards, in which
        # case the federation simply has fewer (non-empty) shards.
        cuts: List[float] = []
        for index in range(1, shards):
            cut = values[(index * len(values)) // shards]
            if not cuts or cut > cuts[-1]:
                cuts.append(cut)
        # Shard i owns [cuts[i-1], cuts[i]) with open extremes at ±inf, so
        # every possible value belongs to exactly one shard.
        bounds: List[Tuple[float, float]] = []
        lower = float("-inf")
        for cut in cuts:
            bounds.append((lower, cut))
            lower = cut
        bounds.append((lower, float("inf")))
        columns = catalog.columns
        buckets: List[List[Row]] = [[] for _ in bounds]
        for row in rows:
            value = float(row[attribute])  # type: ignore[arg-type]
            for index, (low, high) in enumerate(bounds):
                if low <= value < high or (index == len(bounds) - 1 and value >= low):
                    buckets[index].append(row)
                    break
        tables: List[ColumnTable] = []
        partitions: List[Optional[RangePredicate]] = []
        for bucket, (low, high) in zip(buckets, bounds):
            if not bucket:
                continue
            tables.append(ColumnTable.from_rows(bucket, columns=columns))
            is_last = high == float("inf")
            partitions.append(
                RangePredicate(
                    attribute,
                    lower=low,
                    upper=high,
                    include_lower=True,
                    include_upper=is_last,
                )
            )
        return ShardedCatalog(tables, schema, shard_by=attribute, partitions=partitions)

    # ------------------------------------------------------------------ #
    def build_databases(
        self,
        system_ranking: SystemRankingFunction,
        name: str = "federation",
        system_k: int = 20,
        latency_mean: float = 0.0,
        latency_jitter: float = 0.25,
        latency_seed: int = 11,
        latency_sleep: bool = False,
        engine: str = "indexed",
        specs: Optional[Sequence[Optional[ShardSpec]]] = None,
        columnar_backend: str = "buffer",
        fault_plan: Optional[FaultPlan] = None,
    ) -> List[TopKInterface]:
        """Materialize one :class:`HiddenWebDatabase` per shard.

        Shards are named ``"{name}#{i}"`` so that
        :func:`~repro.webdb.cache.default_namespace` automatically gives each
        shard its own cache namespace.  Every shard gets an independent
        latency model (same distribution, shard-specific seed) unless a
        :class:`ShardSpec` overrides it.  A ``fault_plan`` (federation-wide,
        or per shard via the spec) wraps that shard in a
        :class:`~repro.webdb.faults.FaultInjector` with a shard-specific
        seed, so the databases returned may be injector-wrapped.
        """
        if specs is not None and len(specs) != self.shard_count:
            raise QueryError("specs must align with shard tables")
        databases: List[TopKInterface] = []
        for index, table in enumerate(self.tables):
            spec = specs[index] if specs is not None else None
            shard_k, shard_engine, latency, shard_plan = _resolve_shard_spec(
                spec,
                index,
                system_k=system_k,
                engine=engine,
                latency_mean=latency_mean,
                latency_jitter=latency_jitter,
                latency_seed=latency_seed,
                latency_sleep=latency_sleep,
                fault_plan=fault_plan,
            )
            database: TopKInterface = HiddenWebDatabase(
                catalog=table,
                schema=self.schema,
                system_ranking=system_ranking,
                system_k=shard_k,
                latency=latency,
                name=f"{name}#{index}",
                engine=shard_engine,
                columnar_backend=columnar_backend,
            )
            if shard_plan is not None:
                database = FaultInjector(database, shard_plan)
            databases.append(database)
        return databases


class FederatedInterface(TopKInterface):
    """N shard databases presented as one top-k source.

    ``search`` scatters to every shard the query cannot be pruned from,
    gathers the per-shard pages, and merges them by the shared hidden system
    ranking — reproducing the unsharded reference database's pages byte for
    byte (see the module docstring for the argument).

    With :meth:`attach_cache`, shard answers are cached under per-shard
    namespaces: :meth:`invalidate_shard` retires exactly one shard's entries
    while sibling shards' cached answers keep serving.
    """

    def __init__(
        self,
        shards: Sequence[TopKInterface],
        system_ranking: SystemRankingFunction,
        name: str = "federation",
        system_k: Optional[int] = None,
        partitions: Optional[Sequence[Optional[RangePredicate]]] = None,
        shard_by: str = "rank",
        result_cache: Optional[QueryResultCache] = None,
    ) -> None:
        if not shards:
            raise QueryError("a federation needs at least one shard")
        if partitions is not None and len(partitions) != len(shards):
            raise QueryError("partitions must align with shards")
        self._shards: List[TopKInterface] = list(shards)
        self._schema = shards[0].schema
        for shard in self._shards[1:]:
            if shard.schema.key != self._schema.key:
                raise QueryError("shards must share one key column")
        self._system_ranking = system_ranking
        self.name = name
        self._system_k = system_k if system_k is not None else min(
            shard.system_k for shard in self._shards
        )
        if self._system_k <= 0:
            raise QueryError("system_k must be positive")
        for index, shard in enumerate(self._shards):
            if shard.system_k < self._system_k:
                raise QueryError(
                    f"shard {index} has system_k={shard.system_k} below the "
                    f"federated k={self._system_k}"
                )
        self._instrumented = [InstrumentedInterface(shard) for shard in self._shards]
        self._namespaces = [default_namespace(shard) for shard in self._shards]
        if len(set(self._namespaces)) != len(self._namespaces):
            raise QueryError(f"shard names must be unique: {self._namespaces}")
        if self.name in self._namespaces:
            raise QueryError(f"federation name {self.name!r} collides with a shard")
        self._partitions = list(partitions) if partitions is not None else None
        self._shard_by = shard_by
        self._cache = result_cache
        self._lock = threading.Lock()
        self._scatter_count = 0
        self._pruned_shard_queries = 0
        self._fanout_total = 0
        self._fanout_max = 0
        self._merge_rows_total = 0
        self._merge_depth_max = 0
        self._shard_cache_hits = [0] * len(self._shards)
        # Resilience (off until configure_resilience): one guard per shard,
        # sharing the federation's resilience statistics.
        self._resilience: Optional[ResilienceConfig] = None
        self._guards: Optional[List[SourceGuard]] = None
        self._resilience_stats: Optional[ResilienceStatistics] = None
        self._degraded_scatters = 0
        self._stale_shard_answers = 0

    # ------------------------------------------------------------------ #
    # TopKInterface
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def system_k(self) -> int:
        return self._system_k

    @property
    def supports_batched_search(self) -> bool:
        """A scatter already fans out internally; batching is advertised only
        when every shard could amortize it (no sleeping latency model)."""
        return all(shard.supports_batched_search for shard in self._shards)

    def search(self, query: SearchQuery) -> SearchResult:
        """Scatter ``query`` to the live shards and gather one merged page.

        With resilience configured, a shard whose retries are exhausted (or
        whose breaker is open) does not fail the scatter: its stale cached
        answer is replayed when permitted, otherwise the shard is recorded in
        ``missing_shards`` and the merged result is returned *degraded* —
        forced to ``OVERFLOW`` so it never claims to cover the query, and
        never stored in the result cache.  Only when **no** shard contributes
        anything does the scatter raise.
        """
        query.validate(self._schema)
        targets = self._targets_for(query)
        deadline = (
            Deadline(self._resilience.deadline_seconds)
            if self._resilience is not None
            else None
        )
        results: List[SearchResult] = []
        missing: List[str] = []
        stale_answers = 0
        last_error: Optional[SourceUnavailableError] = None
        deadline_hit = False
        for index in targets:
            if deadline is not None and deadline.expired:
                # Out of time: the remaining shards go unqueried and are
                # reported missing instead of being paid for.
                deadline_hit = True
                missing.append(self._namespaces[index])
                continue
            try:
                result = self._shard_search(index, query, deadline)
            except SourceUnavailableError as error:
                last_error = error
                stale = self._stale_shard_answer(index, query)
                if stale is not None:
                    stale_answers += 1
                    results.append(stale)
                else:
                    missing.append(self._namespaces[index])
                continue
            if deadline is not None:
                deadline.charge(result.elapsed_seconds)
            results.append(result)
        if targets and not results:
            # Nothing answered, live or stale: the whole federation is down
            # (or the deadline left no room for even one shard).
            if deadline_hit and last_error is None:
                raise DeadlineExceededError(
                    f"{self.name}: deadline exhausted before any shard answered",
                    elapsed_seconds=deadline.spent if deadline else 0.0,
                )
            raise SourceUnavailableError(
                f"{self.name}: no shard reachable ({', '.join(missing)})",
                source=self.name,
                retry_after_seconds=self._shortest_retry_hint(),
            )
        degraded = bool(missing) or stale_answers > 0
        merged: List[Row] = [row for result in results for row in result.rows]
        merged.sort(key=self._system_ranking.sort_key(self._schema.key))
        overflow = any(result.is_overflow for result in results)
        total = len(merged)
        if degraded or overflow or total > self._system_k:
            # A degraded merge can never prove coverage: unseen shards may
            # hold matches, so the trichotomy is pinned at OVERFLOW.
            outcome = Outcome.OVERFLOW
        elif total == 0:
            outcome = Outcome.UNDERFLOW
        else:
            outcome = Outcome.VALID
        elapsed = max((result.elapsed_seconds for result in results), default=0.0)
        with self._lock:
            self._scatter_count += 1
            self._pruned_shard_queries += len(self._shards) - len(targets)
            self._fanout_total += len(targets)
            self._fanout_max = max(self._fanout_max, len(targets))
            self._merge_rows_total += total
            self._merge_depth_max = max(self._merge_depth_max, total)
            if degraded:
                self._degraded_scatters += 1
            self._stale_shard_answers += stale_answers
        return SearchResult(
            query=query,
            rows=tuple(merged[: self._system_k]),
            outcome=outcome,
            system_k=self._system_k,
            elapsed_seconds=elapsed,
            degraded=degraded,
            missing_shards=tuple(missing),
            stale=stale_answers > 0,
        )

    def queries_issued(self) -> int:
        """Scatters served by the federation (each is one logical query;
        :meth:`shard_queries_issued` counts the underlying shard hits)."""
        with self._lock:
            return self._scatter_count

    # ------------------------------------------------------------------ #
    # Shard plumbing
    # ------------------------------------------------------------------ #
    def _targets_for(self, query: SearchQuery) -> List[int]:
        """Indexes of shards that can hold matches of ``query``.

        Only attribute-partitioned federations prune: a shard whose owned
        range of the partition attribute does not intersect the query's
        explicit range on that attribute is a guaranteed underflow, so
        skipping it costs nothing and changes nothing.
        """
        if self._partitions is None:
            return list(range(len(self._shards)))
        targets: List[int] = []
        for index, partition in enumerate(self._partitions):
            if partition is not None:
                constraint = query.range_on(partition.attribute)
                if constraint is not None and partition.intersect(constraint) is None:
                    continue
            targets.append(index)
        return targets

    def _shard_search(
        self, index: int, query: SearchQuery, deadline: Optional[Deadline] = None
    ) -> SearchResult:
        shard = self._instrumented[index]
        guard = self._guards[index] if self._guards is not None else None
        if guard is None:
            compute: Callable[[], SearchResult] = lambda: shard.search(query)
        else:
            # The guard wraps only the remote compute: cache hits below never
            # touch the breaker, so cached answers keep serving while a shard
            # is down, and breaker state reflects only real round trips.
            compute = lambda: guard.call(lambda: shard.search(query), deadline)
        if self._cache is None:
            return compute()
        result, status = self._cache.fetch(
            self._namespaces[index],
            query,
            shard.system_k,
            compute,
        )
        if status is not FetchStatus.MISS:
            with self._lock:
                self._shard_cache_hits[index] += 1
        return result

    def _stale_shard_answer(
        self, index: int, query: SearchQuery
    ) -> Optional[SearchResult]:
        """A generation-stale cached answer for a failed shard, when the
        resilience policy allows serving it (marked stale + degraded)."""
        if (
            self._cache is None
            or self._resilience is None
            or not self._resilience.serve_stale_on_error
        ):
            return None
        shard = self._instrumented[index]
        stale = self._cache.serve_stale(self._namespaces[index], query, shard.system_k)
        if stale is not None and self._resilience_stats is not None:
            self._resilience_stats.record("stale_serves")
        return stale

    def _shortest_retry_hint(self) -> Optional[float]:
        """The soonest any shard's breaker would admit a probe (for the
        ``Retry-After`` hint of a total-outage 503)."""
        if self._guards is None:
            return None
        waits = [guard.breaker.seconds_until_probe() for guard in self._guards]
        positive = [wait for wait in waits if wait > 0]
        if not positive:
            return None
        return min(positive)

    # ------------------------------------------------------------------ #
    # Cache / shard management
    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> List[HiddenWebDatabase]:
        """The shard databases (reference order = shard index)."""
        return list(self._shards)

    @property
    def shard_interfaces(self) -> List[InstrumentedInterface]:
        """Instrumented per-shard interfaces: all shard traffic — scatter
        *and* merge-mode Get-Next streams — flows through these, so their
        :class:`~repro.webdb.interface.InterfaceStatistics` aggregate the
        per-shard budget spent regardless of execution mode."""
        return list(self._instrumented)

    @property
    def shard_namespaces(self) -> List[str]:
        """Cache namespace of each shard (its database name)."""
        return list(self._namespaces)

    @property
    def shard_count(self) -> int:
        """Number of shards federated behind this interface."""
        return len(self._shards)

    @property
    def shard_by(self) -> str:
        """Partitioning key (``"rank"`` or the partition attribute name)."""
        return self._shard_by

    @property
    def result_cache(self) -> Optional[QueryResultCache]:
        """The cache shard answers are stored in (``None`` when detached)."""
        return self._cache

    def attach_cache(self, cache: QueryResultCache) -> None:
        """Attach the shared result cache the facade stores shard answers in
        (idempotent for the same cache object)."""
        if self._cache is not None and self._cache is not cache:
            raise QueryError("federation already attached to a different cache")
        self._cache = cache

    # ------------------------------------------------------------------ #
    # Resilience
    # ------------------------------------------------------------------ #
    def configure_resilience(
        self,
        config: ResilienceConfig,
        statistics: Optional[ResilienceStatistics] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """Install per-shard retry/breaker guards (idempotent for an equal
        configuration).  ``clock`` overrides the breakers' recovery clock for
        the tests."""
        if self._resilience == config and self._guards is not None:
            return
        effective_clock = clock if clock is not None else time.monotonic
        self._resilience = config
        self._resilience_stats = statistics or ResilienceStatistics()
        self._guards = [
            SourceGuard.from_config(
                namespace,
                config,
                statistics=self._resilience_stats,
                clock=effective_clock,
            )
            for namespace in self._namespaces
        ]

    @property
    def resilience_config(self) -> Optional[ResilienceConfig]:
        """The installed resilience policy (``None`` until configured)."""
        return self._resilience

    @property
    def resilience_statistics(self) -> Optional[ResilienceStatistics]:
        """The shared counters the shard guards record into (``None`` until
        :meth:`configure_resilience`)."""
        return self._resilience_stats

    @property
    def shard_guards(self) -> Optional[List[SourceGuard]]:
        """Per-shard guards, aligned with shard indexes (``None`` until
        :meth:`configure_resilience`)."""
        return list(self._guards) if self._guards is not None else None

    def shard_circuit_open(self, index: int) -> bool:
        """True when shard ``index``'s breaker currently rejects calls (the
        merge-mode Get-Next uses this to skip dead shards up front)."""
        if self._guards is None:
            return False
        return self._guards[index].breaker.is_open

    def fault_injectors(self) -> List[Optional[FaultInjector]]:
        """Each shard's :class:`FaultInjector` (``None`` for clean shards);
        the chaos harness uses these to heal or re-plan outages mid-run."""
        return [find_injector(shard) for shard in self._shards]

    def resilience_snapshot(self) -> Optional[Dict[str, object]]:
        """Aggregated resilience counters plus per-shard breaker states, or
        ``None`` when resilience was never configured."""
        if self._resilience_stats is None or self._guards is None:
            return None
        with self._lock:
            degraded = self._degraded_scatters
            stale = self._stale_shard_answers
        payload = self._resilience_stats.snapshot()
        payload["degraded_scatters"] = degraded
        payload["stale_shard_answers"] = stale
        payload["breakers"] = [guard.describe() for guard in self._guards]
        return payload

    def invalidate_shard(self, index: int) -> int:
        """Retire shard ``index``'s cached answers (returns entries removed).

        Sibling shards' namespaces are untouched — their cached answers keep
        serving.  Callers owning federated-level state derived from *all*
        shards (merged cache entries, feeds, dense regions) must retire that
        state themselves; :meth:`repro.core.reranker.QueryReranker.invalidate`
        does.
        """
        if not 0 <= index < len(self._shards):
            raise QueryError(f"no shard {index}; federation has {len(self._shards)}")
        if self._cache is None:
            return 0
        return self._cache.invalidate(self._namespaces[index])

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def has_key(self, key: object) -> bool:
        """True when any shard currently holds a tuple with this key."""
        return self._owner_of(key) is not None

    def apply_delta(
        self,
        upserts: Sequence[Row] = (),
        deletes: Sequence[object] = (),
    ) -> CatalogDelta:
        """Route a catalog mutation to the owning shards and return the
        merged :class:`CatalogDelta` (with the per-shard breakdown attached
        as ``shard_deltas``).

        Deletes go to the shard currently holding the key.  Upserts of an
        attribute-partitioned federation are routed by the *new* value of the
        partition attribute; when an update moves a tuple across partitions
        it becomes a delete on the old owner plus an insert on the new one —
        anything else would break the shard-pruning invariant that a shard
        only holds tuples inside its owned range.  Rank-partitioned upserts
        stay on their current owner (new keys go to the smallest shard).
        """
        shard_upserts: List[List[Row]] = [[] for _ in self._shards]
        shard_deletes: List[List[object]] = [[] for _ in self._shards]
        for key in deletes:
            owner = self._owner_of(key)
            if owner is None:
                raise QueryError(f"cannot delete unknown tuple key {key!r}")
            shard_deletes[owner].append(key)
        key_column = self._schema.key
        for row in upserts:
            materialized = dict(row)
            key = materialized.get(key_column)
            current = self._owner_of(key)
            target = self._target_shard_for(materialized, current)
            if current is not None and current != target:
                shard_deletes[current].append(key)
            shard_upserts[target].append(materialized)
        shard_deltas: List[Tuple[int, CatalogDelta]] = []
        for index, shard in enumerate(self._shards):
            if not shard_upserts[index] and not shard_deletes[index]:
                continue
            delta = shard.apply_delta(
                upserts=shard_upserts[index],
                deletes=list(dict.fromkeys(shard_deletes[index])),
            )
            if not delta.is_empty:
                shard_deltas.append((index, delta))
        return merge_shard_deltas(self.name, shard_deltas)

    def _owner_of(self, key: object) -> Optional[int]:
        for index, shard in enumerate(self._shards):
            if shard.has_key(key):
                return index
        return None

    def _target_shard_for(self, row: Row, current: Optional[int]) -> int:
        if self._partitions is not None:
            value = row.get(self._shard_by)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                for index, partition in enumerate(self._partitions):
                    if partition is not None and partition.matches(float(value)):
                        return index
        if current is not None:
            return current
        sizes = [shard.size for shard in self._shards]
        return sizes.index(min(sizes))

    def reset_query_count(self) -> None:
        """Reset the scatter counter and every shard's query counter
        (benchmark repetitions)."""
        with self._lock:
            self._scatter_count = 0
        for shard in self._shards:
            shard.reset_query_count()

    # ------------------------------------------------------------------ #
    # Ground-truth helpers (tests / benchmark harness only)
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Total tuples across every shard."""
        return sum(shard.size for shard in self._shards)

    def all_matches(self, query: SearchQuery) -> List[Row]:
        """Every matching tuple across the federation, in hidden-rank order."""
        merged = [row for shard in self._shards for row in shard.all_matches(query)]
        merged.sort(key=self._system_ranking.sort_key(self._schema.key))
        return merged

    def true_ranking(self, query: SearchQuery, score, limit: Optional[int] = None):
        """Ground-truth reranking across every shard (tests only)."""
        matches = self.all_matches(query)
        matches.sort(key=lambda row: (score(row), str(row[self._schema.key])))
        if limit is not None:
            return matches[:limit]
        return matches

    def shard_queries_issued(self) -> int:
        """Raw shard hits across the federation (cache hits excluded)."""
        return sum(wrapper.statistics.queries for wrapper in self._instrumented)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """Structured federation metrics for the service statistics panel:
        per-shard queries issued, merge depth, and scatter fan-out."""
        with self._lock:
            scatter = self._scatter_count
            pruned = self._pruned_shard_queries
            fanout_total = self._fanout_total
            fanout_max = self._fanout_max
            merge_rows = self._merge_rows_total
            merge_max = self._merge_depth_max
            cache_hits = list(self._shard_cache_hits)
        shards = []
        for index, wrapper in enumerate(self._instrumented):
            stats = wrapper.statistics.snapshot()
            partition = (
                self._partitions[index].describe()
                if self._partitions is not None and self._partitions[index] is not None
                else "rank round-robin"
            )
            shards.append(
                {
                    "name": self._namespaces[index],
                    "partition": partition,
                    "size": self._shards[index].size,
                    "system_k": self._shards[index].system_k,
                    "engine": self._shards[index].engine_name,
                    "queries": stats["queries"],
                    "rows_returned": stats["rows_returned"],
                    "elapsed_seconds": stats["elapsed_seconds"],
                    "cache_hits": cache_hits[index],
                }
            )
        return {
            "name": self.name,
            "shard_by": self._shard_by,
            "shard_count": len(self._shards),
            "system_k": self._system_k,
            "scatter_queries": scatter,
            "shard_queries": self.shard_queries_issued(),
            "pruned_shard_queries": pruned,
            "fan_out": {
                "total": fanout_total,
                "max": fanout_max,
                "mean": (fanout_total / scatter) if scatter else 0.0,
            },
            "merge": {
                "rows_merged": merge_rows,
                "max_depth": merge_max,
                "mean_depth": (merge_rows / scatter) if scatter else 0.0,
            },
            "shards": shards,
            "resilience": self.resilience_snapshot(),
        }


def build_federation(
    catalog: ColumnTable,
    schema: Schema,
    system_ranking: SystemRankingFunction,
    shards: int = 2,
    by: str = "rank",
    name: str = "federation",
    system_k: int = 20,
    latency_mean: float = 0.0,
    latency_jitter: float = 0.25,
    latency_seed: int = 11,
    latency_sleep: bool = False,
    engine: str = "indexed",
    specs: Optional[Sequence[Optional[ShardSpec]]] = None,
    result_cache: Optional[QueryResultCache] = None,
    columnar_backend: str = "buffer",
    fault_plan: Optional[FaultPlan] = None,
) -> FederatedInterface:
    """Partition ``catalog`` and wrap the shards in a federated interface.

    This is the one-call path the service registry and the experiment
    harness use; ``shards=1`` still produces a (single-shard) federation —
    callers wanting the unsharded reference engine construct
    :class:`HiddenWebDatabase` directly.  ``fault_plan`` wraps every shard in
    a deterministic :class:`~repro.webdb.faults.FaultInjector` (per-shard
    seed offsets keep the shard schedules independent but replayable).
    """
    sharded = ShardedCatalog.partition(catalog, schema, system_ranking, shards, by=by)
    databases = sharded.build_databases(
        system_ranking,
        name=name,
        system_k=system_k,
        latency_mean=latency_mean,
        latency_jitter=latency_jitter,
        latency_seed=latency_seed,
        latency_sleep=latency_sleep,
        engine=engine,
        specs=specs,
        columnar_backend=columnar_backend,
        fault_plan=fault_plan,
    )
    return FederatedInterface(
        databases,
        system_ranking,
        name=name,
        system_k=system_k,
        partitions=sharded.partitions,
        shard_by=sharded.shard_by,
        result_cache=result_cache,
    )


def build_federation_from_store(
    store: "SQLiteTupleStore",
    schema: Schema,
    system_ranking: SystemRankingFunction,
    shards: int = 2,
    by: str = "rank",
    name: str = "federation",
    system_k: int = 20,
    latency_mean: float = 0.0,
    latency_jitter: float = 0.25,
    latency_seed: int = 11,
    latency_sleep: bool = False,
    engine: str = "indexed",
    specs: Optional[Sequence[Optional[ShardSpec]]] = None,
    result_cache: Optional[QueryResultCache] = None,
    columnar_backend: str = "buffer",
    batch_size: int = 10_000,
    fault_plan: Optional[FaultPlan] = None,
) -> FederatedInterface:
    """Stream a catalog out of a SQLite store into a federated interface.

    Equivalent to loading the store's rows into a :class:`ColumnTable` and
    calling :func:`build_federation` — same partitioning semantics (rank
    round-robin / attribute quantile cuts), same shard naming, byte-identical
    pages — but the catalog is transposed into rank-ordered columns batch by
    batch (:func:`~repro.webdb.database.stream_sorted_columns`) and each
    shard's catalog is a positional slice of those columns: at no point do
    per-row dictionaries of the whole catalog exist, which is what makes
    million-tuple federations constructible within a sane memory ceiling.
    """
    if shards <= 0:
        raise QueryError("shard count must be positive")
    column_order = schema.columns()
    columns = stream_sorted_columns(store, schema, system_ranking, batch_size=batch_size)
    size = len(columns[schema.key])
    # Partition rank *positions* (the columns are already in hidden-rank
    # order, so increasing-position subsets stay rank-ordered per shard).
    partitions: Optional[List[Optional[RangePredicate]]] = None
    if by == "rank":
        shard_by = "rank"
        buckets: List[List[int]] = [
            list(range(start, size, shards)) for start in range(shards)
        ]
        buckets = [bucket for bucket in buckets if bucket]
    else:
        schema.require_numeric(by)
        if size == 0:
            raise QueryError("cannot partition an empty catalog")
        shard_by = by
        attribute_column = columns[by]
        values = sorted(float(value) for value in attribute_column)  # type: ignore[arg-type]
        # Quantile boundaries, deduplicated — mirrors ShardedCatalog._by_attribute.
        cuts: List[float] = []
        for index in range(1, shards):
            cut = values[(index * len(values)) // shards]
            if not cuts or cut > cuts[-1]:
                cuts.append(cut)
        bounds: List[Tuple[float, float]] = []
        lower = float("-inf")
        for cut in cuts:
            bounds.append((lower, cut))
            lower = cut
        bounds.append((lower, float("inf")))
        raw_buckets: List[List[int]] = [[] for _ in bounds]
        for position in range(size):
            value = float(attribute_column[position])  # type: ignore[arg-type]
            for index, (low, high) in enumerate(bounds):
                if low <= value < high or (index == len(bounds) - 1 and value >= low):
                    raw_buckets[index].append(position)
                    break
        buckets = []
        partitions = []
        for bucket, (low, high) in zip(raw_buckets, bounds):
            if not bucket:
                continue
            buckets.append(bucket)
            partitions.append(
                RangePredicate(
                    by,
                    lower=low,
                    upper=high,
                    include_lower=True,
                    include_upper=high == float("inf"),
                )
            )
    if specs is not None and len(specs) != len(buckets):
        raise QueryError("specs must align with shard tables")
    databases: List[TopKInterface] = []
    for index, bucket in enumerate(buckets):
        shard_columns = {
            column: [columns[column][position] for position in bucket]
            for column in column_order
        }
        columnar = ColumnarCatalog.from_columns(
            shard_columns, column_order, schema.key, backend=columnar_backend
        )
        spec = specs[index] if specs is not None else None
        shard_k, shard_engine, latency, shard_plan = _resolve_shard_spec(
            spec,
            index,
            system_k=system_k,
            engine=engine,
            latency_mean=latency_mean,
            latency_jitter=latency_jitter,
            latency_seed=latency_seed,
            latency_sleep=latency_sleep,
            fault_plan=fault_plan,
        )
        database: TopKInterface = HiddenWebDatabase.from_columnar(
            columnar,
            schema,
            system_ranking,
            system_k=shard_k,
            latency=latency,
            name=f"{name}#{index}",
            engine=shard_engine,
        )
        if shard_plan is not None:
            database = FaultInjector(database, shard_plan)
        databases.append(database)
    del columns
    return FederatedInterface(
        databases,
        system_ranking,
        name=name,
        system_k=system_k,
        partitions=partitions,
        shard_by=shard_by,
        result_cache=result_cache,
    )
