"""HTTP-backed implementation of the top-k interface.

:class:`RemoteTopKInterface` is what the deployed QR2 actually uses: it knows
nothing about the database's internals and reaches it exclusively through the
public search API (here: the endpoints served by
:class:`~repro.httpsim.server.SearchHttpServer`).  The schema is discovered
once from ``/api/schema``; every ``search`` call serializes the query to URL
parameters, performs a GET, and parses the JSON result back into a
:class:`~repro.webdb.interface.SearchResult`.

Running the reranking algorithms against this adapter (instead of directly
against :class:`~repro.webdb.database.HiddenWebDatabase`) exercises exactly
the code path the paper's third-party service runs in production.
"""

from __future__ import annotations

from typing import Optional

from repro.dataset.schema import Schema
from repro.exceptions import RemoteInterfaceError
from repro.httpsim import wire
from repro.httpsim.client import HttpClient
from repro.webdb.counters import QueryCounter
from repro.webdb.interface import SearchResult, TopKInterface
from repro.webdb.query import SearchQuery


class RemoteTopKInterface(TopKInterface):
    """Top-k interface backed by a remote (or in-process) search API."""

    def __init__(self, client: HttpClient) -> None:
        self._client = client
        self._counter = QueryCounter()
        self._schema: Optional[Schema] = None
        self._system_k: Optional[int] = None
        self._name: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Lazy discovery of the remote search form
    # ------------------------------------------------------------------ #
    def _discover(self) -> None:
        if self._schema is not None and self._system_k is not None:
            return
        schema_payload = self._client.get_json("/api/schema")
        meta_payload = self._client.get_json("/api/meta")
        if not isinstance(schema_payload, dict) or not isinstance(meta_payload, dict):
            raise RemoteInterfaceError("malformed discovery payloads")
        self._schema = wire.decode_schema(schema_payload)
        self._system_k = int(meta_payload["system_k"])
        self._name = str(meta_payload.get("name", "remote"))

    @property
    def schema(self) -> Schema:
        self._discover()
        assert self._schema is not None
        return self._schema

    @property
    def system_k(self) -> int:
        self._discover()
        assert self._system_k is not None
        return self._system_k

    @property
    def name(self) -> str:
        """Display name advertised by the remote database."""
        self._discover()
        assert self._name is not None
        return self._name

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(self, query: SearchQuery) -> SearchResult:
        """Execute a top-k query against the remote search API."""
        self._discover()
        params = wire.encode_query(query)
        payload = self._client.get_json("/api/search", params)
        if not isinstance(payload, dict):
            raise RemoteInterfaceError("malformed search payload")
        self._counter.increment()
        return wire.decode_result(payload, query)

    def queries_issued(self) -> int:
        """Number of search queries sent through this adapter."""
        return self._counter.count
