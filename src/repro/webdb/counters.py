"""Query accounting: counters, budgets, and logs.

The unit the paper optimizes is the number of search queries issued to the
remote web database.  Three small utilities make that unit first-class:

* :class:`QueryCounter` — thread-safe monotone counter shared by the parallel
  executor and the sequential code paths;
* :class:`QueryBudget` — a counter with a hard cap that raises
  :class:`~repro.exceptions.QueryBudgetExceeded` when the reranking algorithm
  would exceed the caller's allowance;
* :class:`QueryLog` — an append-only record of the issued queries used by the
  tests (to assert no duplicate work) and the statistics panel.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import QueryBudgetExceeded
from repro.webdb.interface import SearchResult
from repro.webdb.query import SearchQuery


class QueryCounter:
    """Thread-safe counter of queries issued against a web database."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` and return the new total."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        with self._lock:
            self._count += amount
            return self._count

    def increment_capped(self, amount: int, limit: Optional[int]) -> Tuple[int, bool]:
        """Atomically add ``amount`` unless the result would exceed ``limit``.

        Returns ``(total, accepted)``.  When the cap would be exceeded the
        counter is left *unchanged* — the check and the increment happen under
        one lock, so concurrent callers can never jointly overshoot the cap or
        inflate the count with a charge that was refused.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        with self._lock:
            if limit is not None and self._count + amount > limit:
                return self._count, False
            self._count += amount
            return self._count, True

    def decrement(self, amount: int = 1) -> int:
        """Subtract ``amount`` (floored at zero) and return the new total."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        with self._lock:
            self._count = max(self._count - amount, 0)
            return self._count

    @property
    def count(self) -> int:
        """Current total."""
        with self._lock:
            return self._count

    def reset(self) -> None:
        """Reset the counter to zero."""
        with self._lock:
            self._count = 0


class QueryBudget:
    """A query counter with a hard cap.

    ``limit=None`` means unlimited; ``charge`` then simply counts.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative or None")
        self._limit = limit
        self._counter = QueryCounter()

    @property
    def limit(self) -> Optional[int]:
        """The cap, or ``None`` when unlimited."""
        return self._limit

    @property
    def used(self) -> int:
        """Queries charged so far."""
        return self._counter.count

    @property
    def remaining(self) -> Optional[int]:
        """Queries left before the cap, or ``None`` when unlimited."""
        if self._limit is None:
            return None
        return max(self._limit - self.used, 0)

    def charge(self, amount: int = 1) -> None:
        """Charge ``amount`` queries, raising when the cap would be exceeded.

        The check and the charge are atomic: a refused charge leaves ``used``
        untouched, so a query group that trips the budget does not inflate the
        count even though none of its queries ran.
        """
        total, accepted = self._counter.increment_capped(amount, self._limit)
        if not accepted:
            assert self._limit is not None
            raise QueryBudgetExceeded(budget=self._limit, issued=total + amount)

    def refund(self, amount: int = 1) -> None:
        """Return ``amount`` previously charged queries to the budget (used
        when a charged query turns out to be served without a round trip,
        e.g. it coalesced onto another session's identical in-flight query)."""
        self._counter.decrement(amount)

    def can_afford(self, amount: int = 1) -> bool:
        """True when ``amount`` more queries fit under the cap."""
        if self._limit is None:
            return True
        return self.used + amount <= self._limit


@dataclass
class QueryLogEntry:
    """One issued query plus a summary of its result."""

    query: SearchQuery
    outcome: str
    returned: int
    elapsed_seconds: float
    parallel_group: Optional[int] = None
    cached: bool = False

    def describe(self) -> str:
        """Single-line rendering for logs."""
        tag = f" group={self.parallel_group}" if self.parallel_group is not None else ""
        if self.cached:
            tag += " cached"
        return (
            f"[{self.outcome:>9}] {self.returned:>3} rows "
            f"{self.elapsed_seconds:6.3f}s{tag}  {self.query.describe()}"
        )


@dataclass
class QueryLog:
    """Append-only log of every query one reranking request issued."""

    entries: List[QueryLogEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(
        self,
        result: SearchResult,
        parallel_group: Optional[int] = None,
        cached: bool = False,
    ) -> None:
        """Append one result to the log (thread-safe)."""
        entry = QueryLogEntry(
            query=result.query,
            outcome=result.outcome.value,
            returned=len(result.rows),
            elapsed_seconds=result.elapsed_seconds,
            parallel_group=parallel_group,
            cached=cached,
        )
        with self._lock:
            self.entries.append(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self.entries)

    def outcome_counts(self) -> Dict[str, int]:
        """Histogram of outcomes across the log."""
        counts: Dict[str, int] = {}
        with self._lock:
            for entry in self.entries:
                counts[entry.outcome] = counts.get(entry.outcome, 0) + 1
        return counts

    def duplicate_queries(self) -> List[Tuple]:
        """Canonical keys of queries *issued* more than once (the tests assert
        the RERANK algorithms keep this list small).  Cache hits are excluded:
        a repeat answered from the shared result cache is not duplicate work."""
        seen: Dict[Tuple, int] = {}
        with self._lock:
            for entry in self.entries:
                if entry.cached:
                    continue
                key = entry.query.canonical_key()
                seen[key] = seen.get(key, 0) + 1
        return [key for key, count in seen.items() if count > 1]

    def total_elapsed(self) -> float:
        """Sum of per-query elapsed times (sequential-equivalent cost)."""
        with self._lock:
            return sum(entry.elapsed_seconds for entry in self.entries)

    def describe(self, limit: int = 50) -> str:
        """Multi-line rendering of the first ``limit`` entries."""
        with self._lock:
            shown = self.entries[:limit]
            extra = len(self.entries) - len(shown)
        lines = [entry.describe() for entry in shown]
        if extra > 0:
            lines.append(f"... ({extra} more queries)")
        return "\n".join(lines)
