"""Simulated hidden web databases exposing only a top-k search interface."""

from repro.webdb.query import InPredicate, RangePredicate, SearchQuery
from repro.webdb.delta import CatalogDelta, merge_shard_deltas
from repro.webdb.interface import Outcome, SearchResult, TopKInterface
from repro.webdb.database import HiddenWebDatabase, stream_sorted_columns
from repro.webdb.ranking import (
    AttributeOrderRanking,
    FeaturedScoreRanking,
    LinearSystemRanking,
    RandomTieBreakRanking,
    SystemRankingFunction,
)
from repro.webdb.cache import CachingInterface, FetchStatus, QueryResultCache
from repro.webdb.counters import QueryBudget, QueryCounter, QueryLog
from repro.webdb.federation import (
    FederatedInterface,
    ShardSpec,
    ShardedCatalog,
    build_federation,
    build_federation_from_store,
)
from repro.webdb.engine import (
    ExecutionEngine,
    IndexedColumnarEngine,
    NaiveScanEngine,
    QueryPlan,
    create_engine,
)
from repro.webdb.indexes import ColumnarCatalog
from repro.webdb.latency import LatencyModel

__all__ = [
    "CachingInterface",
    "CatalogDelta",
    "merge_shard_deltas",
    "ColumnarCatalog",
    "ExecutionEngine",
    "FetchStatus",
    "IndexedColumnarEngine",
    "NaiveScanEngine",
    "QueryPlan",
    "QueryResultCache",
    "create_engine",
    "InPredicate",
    "RangePredicate",
    "SearchQuery",
    "Outcome",
    "SearchResult",
    "TopKInterface",
    "HiddenWebDatabase",
    "SystemRankingFunction",
    "AttributeOrderRanking",
    "LinearSystemRanking",
    "FeaturedScoreRanking",
    "RandomTieBreakRanking",
    "QueryCounter",
    "QueryBudget",
    "QueryLog",
    "LatencyModel",
    "FederatedInterface",
    "ShardSpec",
    "ShardedCatalog",
    "build_federation",
    "build_federation_from_store",
    "stream_sorted_columns",
]
