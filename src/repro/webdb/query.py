"""Search queries against a web database's public interface.

A public web search form supports conjunctive filtering: a numeric range per
slider attribute and a value set per drop-down attribute.  :class:`SearchQuery`
models exactly that — a conjunction of :class:`RangePredicate` and
:class:`InPredicate` — and supplies the algebra the reranking algorithms need:
intersection with sub-ranges, splitting on an attribute, and membership tests
used for verification against the session cache.

Range bounds can be inclusive or exclusive on either end.  Exclusive bounds
matter: the Get-Next primitive repeatedly asks for "tuples strictly beyond the
current value", and mapping that onto the inclusive sliders of a real web form
is exactly the kind of detail a third-party service has to get right.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.dataset.schema import Schema
from repro.exceptions import QueryError

Row = Mapping[str, object]


@dataclass(frozen=True)
class RangePredicate:
    """Numeric predicate ``lower (<|<=) attribute (<|<=) upper``.

    ``lower``/``upper`` may be ``-inf``/``+inf`` to express one-sided ranges.
    """

    attribute: str
    lower: float = -math.inf
    upper: float = math.inf
    include_lower: bool = True
    include_upper: bool = True

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise QueryError(
                f"inverted range on {self.attribute!r}: [{self.lower}, {self.upper}]"
            )
        if self.lower == self.upper and not (self.include_lower and self.include_upper):
            raise QueryError(
                f"empty range on {self.attribute!r}: degenerate bounds must be inclusive"
            )

    # ------------------------------------------------------------------ #
    def matches(self, value: float) -> bool:
        """True when ``value`` satisfies the predicate.

        ``NaN`` never matches: every comparison against it is ``False``, so
        without the explicit rejection a NaN attribute value would satisfy
        *every* range predicate and poison covered-region accounting."""
        if math.isnan(value):
            return False
        if value < self.lower or value > self.upper:
            return False
        if value == self.lower and not self.include_lower:
            return False
        if value == self.upper and not self.include_upper:
            return False
        return True

    def contains(self, other: "RangePredicate") -> bool:
        """True when every value matching ``other`` also matches this
        predicate (``other``'s range lies inside this one, exclusive bounds
        respected)."""
        if other.attribute != self.attribute:
            raise QueryError(
                f"cannot compare ranges on {self.attribute!r} and {other.attribute!r}"
            )
        if other.lower < self.lower:
            return False
        if other.lower == self.lower and other.include_lower and not self.include_lower:
            return False
        if other.upper > self.upper:
            return False
        if other.upper == self.upper and other.include_upper and not self.include_upper:
            return False
        return True

    @property
    def width(self) -> float:
        """Width of the range (``inf`` for unbounded ranges)."""
        return self.upper - self.lower

    @property
    def is_point(self) -> bool:
        """True when the predicate pins a single value."""
        return self.lower == self.upper

    def intersect(self, other: "RangePredicate") -> Optional["RangePredicate"]:
        """Intersection with another range on the same attribute.

        Returns ``None`` when the intersection is empty.
        """
        if other.attribute != self.attribute:
            raise QueryError(
                f"cannot intersect ranges on {self.attribute!r} and {other.attribute!r}"
            )
        if self.lower > other.lower or (
            self.lower == other.lower and not self.include_lower
        ):
            lower, include_lower = self.lower, self.include_lower
        else:
            lower, include_lower = other.lower, other.include_lower
        if self.upper < other.upper or (
            self.upper == other.upper and not self.include_upper
        ):
            upper, include_upper = self.upper, self.include_upper
        else:
            upper, include_upper = other.upper, other.include_upper
        if lower > upper:
            return None
        if lower == upper and not (include_lower and include_upper):
            return None
        return RangePredicate(self.attribute, lower, upper, include_lower, include_upper)

    def split(self, midpoint: float) -> Tuple["RangePredicate", "RangePredicate"]:
        """Split into ``[lower, midpoint]`` and ``(midpoint, upper]`` halves.

        The midpoint must leave both halves representable: strictly below
        ``upper``, and — when the lower bound is exclusive — strictly above
        ``lower`` (otherwise the low half would be the empty range
        ``(lower, lower]``, which has no representation)."""
        if not (self.lower <= midpoint <= self.upper):
            raise QueryError(
                f"midpoint {midpoint} outside range [{self.lower}, {self.upper}]"
            )
        if midpoint >= self.upper or (midpoint == self.lower and not self.include_lower):
            raise QueryError(
                f"midpoint {midpoint} cannot split {self.describe()} into two "
                "non-empty halves"
            )
        low = RangePredicate(
            self.attribute, self.lower, midpoint, self.include_lower, True
        )
        high = RangePredicate(
            self.attribute, midpoint, self.upper, False, self.include_upper
        )
        return low, high

    def describe(self) -> str:
        """Human-readable rendering used in logs and the statistics panel."""
        left = "[" if self.include_lower else "("
        right = "]" if self.include_upper else ")"
        return f"{self.attribute} in {left}{self.lower:g}, {self.upper:g}{right}"


@dataclass(frozen=True)
class InPredicate:
    """Categorical predicate ``attribute IN values``."""

    attribute: str
    values: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.values:
            raise QueryError(f"empty IN predicate on {self.attribute!r}")

    def matches(self, value: object) -> bool:
        """True when ``value`` is one of the allowed values."""
        return value in self.values

    def contains(self, other: "InPredicate") -> bool:
        """True when every value matching ``other`` also matches this
        predicate (``other``'s value set is a subset of this one)."""
        if other.attribute != self.attribute:
            raise QueryError(
                f"cannot compare predicates on {self.attribute!r} and {other.attribute!r}"
            )
        return other.values <= self.values

    def intersect(self, other: "InPredicate") -> Optional["InPredicate"]:
        """Intersection with another IN predicate (``None`` if disjoint)."""
        if other.attribute != self.attribute:
            raise QueryError(
                f"cannot intersect predicates on {self.attribute!r} and {other.attribute!r}"
            )
        common = self.values & other.values
        if not common:
            return None
        return InPredicate(self.attribute, common)

    def describe(self) -> str:
        """Human-readable rendering."""
        rendered = ", ".join(sorted(self.values))
        return f"{self.attribute} in {{{rendered}}}"

    @staticmethod
    def of(attribute: str, values: Iterable[str]) -> "InPredicate":
        """Convenience constructor accepting any iterable of values."""
        return InPredicate(attribute, frozenset(values))


@dataclass(frozen=True)
class SearchQuery:
    """A conjunctive search query: at most one predicate per attribute."""

    ranges: Tuple[RangePredicate, ...] = ()
    memberships: Tuple[InPredicate, ...] = ()

    def __post_init__(self) -> None:
        names = [p.attribute for p in self.ranges] + [p.attribute for p in self.memberships]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate predicates on attributes: {names}")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def everything() -> "SearchQuery":
        """The unconstrained query (matches every tuple)."""
        return SearchQuery()

    @staticmethod
    def build(
        ranges: Optional[Mapping[str, Tuple[float, float]]] = None,
        memberships: Optional[Mapping[str, Iterable[str]]] = None,
    ) -> "SearchQuery":
        """Build a query from plain dictionaries (used by the service layer).

        ``ranges`` maps attribute name to an inclusive ``(lower, upper)`` pair;
        ``memberships`` maps attribute name to an iterable of allowed values.
        """
        range_predicates = tuple(
            RangePredicate(name, float(low), float(high))
            for name, (low, high) in (ranges or {}).items()
        )
        membership_predicates = tuple(
            InPredicate.of(name, values) for name, values in (memberships or {}).items()
        )
        return SearchQuery(range_predicates, membership_predicates)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def constrained_attributes(self) -> Tuple[str, ...]:
        """Names of attributes the query constrains."""
        return tuple(
            [p.attribute for p in self.ranges] + [p.attribute for p in self.memberships]
        )

    def range_on(self, attribute: str) -> Optional[RangePredicate]:
        """The range predicate on ``attribute`` if present."""
        for predicate in self.ranges:
            if predicate.attribute == attribute:
                return predicate
        return None

    def membership_on(self, attribute: str) -> Optional[InPredicate]:
        """The IN predicate on ``attribute`` if present."""
        for predicate in self.memberships:
            if predicate.attribute == attribute:
                return predicate
        return None

    def matches(self, row: Row) -> bool:
        """True when ``row`` satisfies every predicate.

        Range predicates only accept genuinely numeric values: ``bool`` is an
        ``int`` subclass, but ``True`` satisfying a range containing ``1.0``
        is never what a search form means, so it is excluded explicitly."""
        for predicate in self.ranges:
            value = row.get(predicate.attribute)
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or not predicate.matches(float(value))
            ):
                return False
        for predicate in self.memberships:
            if not predicate.matches(row.get(predicate.attribute)):
                return False
        return True

    def contains(self, other: "SearchQuery") -> bool:
        """True when every row matching ``other`` provably matches this query
        (``other``'s match set is a subset of this query's match set).

        A query contains another when each of its predicates is implied by a
        *narrower* predicate of the same kind in ``other``; attributes this
        query leaves unconstrained are free.  The check is conservative — a
        membership predicate never implies a range predicate and vice versa —
        so ``False`` only means "not provably contained"."""
        for predicate in self.ranges:
            narrower = other.range_on(predicate.attribute)
            if narrower is None or not predicate.contains(narrower):
                return False
        for predicate in self.memberships:
            narrower = other.membership_on(predicate.attribute)
            if narrower is None or not predicate.contains(narrower):
                return False
        return True

    # ------------------------------------------------------------------ #
    # Algebra used by the reranking algorithms
    # ------------------------------------------------------------------ #
    def with_range(self, predicate: RangePredicate) -> "SearchQuery":
        """Conjoin a range predicate, intersecting with any existing range on
        the same attribute.  Raises :class:`QueryError` if the result is empty."""
        existing = self.range_on(predicate.attribute)
        if existing is not None:
            merged = existing.intersect(predicate)
            if merged is None:
                raise QueryError(
                    f"empty intersection on attribute {predicate.attribute!r}"
                )
            others = tuple(p for p in self.ranges if p.attribute != predicate.attribute)
            return replace(self, ranges=others + (merged,))
        return replace(self, ranges=self.ranges + (predicate,))

    def try_with_range(self, predicate: RangePredicate) -> Optional["SearchQuery"]:
        """Like :meth:`with_range` but returns ``None`` instead of raising when
        the conjunction is unsatisfiable."""
        existing = self.range_on(predicate.attribute)
        if existing is not None and existing.intersect(predicate) is None:
            return None
        return self.with_range(predicate)

    def with_membership(self, predicate: InPredicate) -> "SearchQuery":
        """Conjoin an IN predicate, intersecting with any existing predicate."""
        existing = self.membership_on(predicate.attribute)
        if existing is not None:
            merged = existing.intersect(predicate)
            if merged is None:
                raise QueryError(
                    f"empty intersection on attribute {predicate.attribute!r}"
                )
            others = tuple(
                p for p in self.memberships if p.attribute != predicate.attribute
            )
            return replace(self, memberships=others + (merged,))
        return replace(self, memberships=self.memberships + (predicate,))

    def without_attribute(self, attribute: str) -> "SearchQuery":
        """Drop any predicate on ``attribute``."""
        return SearchQuery(
            tuple(p for p in self.ranges if p.attribute != attribute),
            tuple(p for p in self.memberships if p.attribute != attribute),
        )

    def effective_range(self, attribute: str, schema: Schema) -> RangePredicate:
        """The range the query effectively imposes on ``attribute``: either its
        explicit predicate or the attribute's full advertised domain."""
        explicit = self.range_on(attribute)
        if explicit is not None:
            return explicit
        lower, upper = schema.domain_bounds(attribute)
        return RangePredicate(attribute, lower, upper)

    def validate(self, schema: Schema) -> None:
        """Check every predicate against the schema."""
        for predicate in self.ranges:
            schema.require_numeric(predicate.attribute)
        for predicate in self.memberships:
            attribute = schema.require_categorical(predicate.attribute)
            unknown = predicate.values - set(attribute.categories)
            if unknown:
                raise QueryError(
                    f"unknown values {sorted(unknown)} for attribute "
                    f"{predicate.attribute!r}"
                )

    # ------------------------------------------------------------------ #
    # Identity / rendering
    # ------------------------------------------------------------------ #
    def canonical_key(self) -> Tuple:
        """Hashable canonical form used for query de-duplication and caching."""
        ranges = tuple(
            sorted(
                (p.attribute, p.lower, p.upper, p.include_lower, p.include_upper)
                for p in self.ranges
            )
        )
        memberships = tuple(
            sorted((p.attribute, tuple(sorted(p.values))) for p in self.memberships)
        )
        return ranges, memberships

    def describe(self) -> str:
        """Human-readable rendering used in logs and the statistics panel."""
        parts = [p.describe() for p in self.ranges] + [p.describe() for p in self.memberships]
        if not parts:
            return "TRUE"
        return " AND ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form used by the HTTP wire format."""
        return {
            "ranges": [
                {
                    "attribute": p.attribute,
                    "lower": p.lower,
                    "upper": p.upper,
                    "include_lower": p.include_lower,
                    "include_upper": p.include_upper,
                }
                for p in self.ranges
            ],
            "memberships": [
                {"attribute": p.attribute, "values": sorted(p.values)}
                for p in self.memberships
            ],
        }

    @staticmethod
    def from_dict(payload: Mapping[str, object]) -> "SearchQuery":
        """Inverse of :meth:`to_dict`."""
        ranges = tuple(
            RangePredicate(
                attribute=str(item["attribute"]),
                lower=float(item.get("lower", -math.inf)),
                upper=float(item.get("upper", math.inf)),
                include_lower=bool(item.get("include_lower", True)),
                include_upper=bool(item.get("include_upper", True)),
            )
            for item in payload.get("ranges", [])  # type: ignore[union-attr]
        )
        memberships = tuple(
            InPredicate.of(str(item["attribute"]), item["values"])  # type: ignore[index]
            for item in payload.get("memberships", [])  # type: ignore[union-attr]
        )
        return SearchQuery(ranges, memberships)
