"""Execution engines behind :class:`~repro.webdb.database.HiddenWebDatabase`.

The seed implementation answered every top-k query with a pure-Python scan
over dictionary rows — per-row ``isinstance`` checks, ``dict.get`` lookups,
and a ``dict(row)`` copy per hit.  That contract-first simplicity is kept
here as :class:`NaiveScanEngine`, the reference engine the differential tests
and the throughput benchmark compare against.

:class:`IndexedColumnarEngine` answers the same queries over the columnar
structures of :class:`~repro.webdb.indexes.ColumnarCatalog`.  A query is
compiled into a :class:`QueryPlan`:

* every predicate becomes a **block filter** — a closure applying the
  predicate to a block of rank positions with a single list comprehension
  (one C-level loop per predicate per block instead of a Python-level
  function call per row);
* ``bisect`` over the per-attribute sorted value arrays and the posting-list
  lengths yield an exact **match-count estimate** per predicate;
* the planner then picks between a **rank-order scan** over all positions
  with early termination at ``k + 1`` matches (cheap for broad, overflowing
  queries) and a **candidate plan** that drives execution from the most
  selective predicate's candidate positions (cheap for narrow queries, where
  the naive scan would walk the whole catalog).

Both engines preserve the seed semantics bit for bit: hidden-rank result
order, exclusive-bound handling, the overflow/valid/underflow trichotomy, and
the exact row-dictionary layout.  ``execute_many`` lets one parallel query
group share the per-predicate planning work (bound spans, candidate lists)
across its queries.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from itertools import chain
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import QueryError
from repro.webdb import arrays
from repro.webdb.indexes import ColumnarCatalog, is_numeric
from repro.webdb.query import InPredicate, RangePredicate, SearchQuery

Row = Dict[str, object]
#: A block filter: rank positions in → surviving rank positions out.
BlockFilter = Callable[[Sequence[int]], Sequence[int]]

#: Engine names accepted by :func:`create_engine` / the ``engine`` knobs.
ENGINE_NAMES: Tuple[str, ...] = ("indexed", "naive")


class ExecutionEngine(ABC):
    """Strategy interface: answer conjunctive top-k queries over one catalog."""

    name: str = "abstract"

    @abstractmethod
    def execute(self, query: SearchQuery, k: int) -> Tuple[List[Row], bool]:
        """Return ``(matches, overflow)``: the first ``k`` matching rows in
        hidden-rank order (fresh dictionaries) and whether more matched."""

    def execute_many(
        self, queries: Sequence[SearchQuery], k: int
    ) -> List[Tuple[List[Row], bool]]:
        """Batched :meth:`execute`; subclasses may amortize planning work."""
        return [self.execute(query, k) for query in queries]


class NaiveScanEngine(ExecutionEngine):
    """The seed implementation, verbatim: a row-at-a-time scan in hidden-rank
    order with early termination at ``k + 1`` matches.

    Kept as the reference point of the differential test suite and the
    throughput benchmark, and selectable via ``engine="naive"``.
    """

    name = "naive"

    def __init__(self, ranked_rows: Sequence[Mapping[str, object]]) -> None:
        self._ranked_rows = ranked_rows

    def execute(self, query: SearchQuery, k: int) -> Tuple[List[Row], bool]:
        matches: List[Row] = []
        overflow = False
        for row in self._ranked_rows:
            if not query.matches(row):
                continue
            if len(matches) < k:
                matches.append(dict(row))
            else:
                overflow = True
                break
        return matches, overflow


@dataclass(frozen=True)
class QueryPlan:
    """How the indexed engine decided to answer one query (diagnostics).

    ``kind`` is one of:

    * ``"empty"`` — a predicate is unsatisfiable against this catalog; the
      query underflows without touching a single row;
    * ``"scan"`` — rank-order block scan with early termination;
    * ``"candidates"`` — execution driven from ``driver``'s candidate rank
      positions, with the remaining predicates applied as block filters.
    """

    kind: str
    estimated_matches: int
    filters: int
    driver: Optional[str] = None
    candidate_count: int = 0

    def describe(self) -> str:
        """One-line rendering for logs and the statistics panel."""
        if self.kind == "empty":
            return "empty (unsatisfiable predicate)"
        if self.kind == "candidates":
            return (
                f"candidates[{self.driver}] n={self.candidate_count} "
                f"filters={self.filters} est={self.estimated_matches}"
            )
        return f"scan filters={self.filters} est={self.estimated_matches}"


class _CompiledQuery:
    """A query lowered onto one catalog: block filters plus an optional
    candidate driver."""

    __slots__ = ("plan", "filters", "candidates")

    def __init__(
        self,
        plan: QueryPlan,
        filters: List[BlockFilter],
        candidates: Optional[Sequence[int]],
    ) -> None:
        self.plan = plan
        self.filters = filters
        self.candidates = candidates


class IndexedColumnarEngine(ExecutionEngine):
    """Vectorized columnar execution with index-assisted planning.

    Parameters
    ----------
    catalog:
        The columnar snapshot to execute over.
    block_size:
        Rank positions processed per filter application.  Blocks keep the
        intermediate candidate lists small under early termination while
        amortizing the per-block Python overhead.
    """

    name = "indexed"

    def __init__(self, catalog: ColumnarCatalog, block_size: int = 1024) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self._catalog = catalog
        self._block = block_size

    # ------------------------------------------------------------------ #
    # ExecutionEngine
    # ------------------------------------------------------------------ #
    def execute(self, query: SearchQuery, k: int) -> Tuple[List[Row], bool]:
        return self._run(self._compile(query, k, {}), k)

    def execute_many(
        self, queries: Sequence[SearchQuery], k: int
    ) -> List[Tuple[List[Row], bool]]:
        # One shared memo: queries of a parallel group typically differ in a
        # single bound, so bound spans and candidate lists computed for one
        # member answer the others for free.
        memo: Dict[Tuple, object] = {}
        return [self._run(self._compile(query, k, memo), k) for query in queries]

    def explain(self, query: SearchQuery, k: int) -> QueryPlan:
        """The plan :meth:`execute` would pick for ``query`` (diagnostics)."""
        return self._compile(query, k, {}).plan

    # ------------------------------------------------------------------ #
    # Planner
    # ------------------------------------------------------------------ #
    def _compile(
        self, query: SearchQuery, k: int, memo: Dict[Tuple, object]
    ) -> _CompiledQuery:
        catalog = self._catalog
        size = catalog.size
        filters: List[BlockFilter] = []
        # (estimate, attribute, candidate thunk, filter index) per indexable
        # predicate; the cheapest one may become the candidate driver.
        drivers: List[Tuple[int, str, Callable[[], List[int]], int]] = []
        estimates: List[int] = []

        for predicate in chain(query.ranges, query.memberships):
            if isinstance(predicate, RangePredicate):
                spec = self._compile_range(predicate, memo)
            else:
                spec = self._compile_membership(predicate, memo)
            if spec is None:
                return self._empty_plan(len(filters))
            block_filter, estimate, candidate_thunk = spec
            if estimate is not None:
                estimates.append(estimate)
            # A driver must own a filter slot: its candidates replace exactly
            # that filter, so filter-less predicates (e.g. unbounded ranges)
            # never drive.
            if (
                candidate_thunk is not None
                and estimate is not None
                and block_filter is not None
            ):
                drivers.append(
                    (estimate, predicate.attribute, candidate_thunk, len(filters))
                )
            if block_filter is not None:
                filters.append(block_filter)

        matches_estimate = self._estimate_matches(size, estimates)
        if not drivers:
            plan = QueryPlan("scan", matches_estimate, len(filters))
            return _CompiledQuery(plan, filters, None)

        best_estimate, attribute, candidate_thunk, filter_index = min(
            drivers, key=lambda item: item[0]
        )
        # Rows the scan touches before finding k+1 matches, assuming matches
        # are spread uniformly through the ranking.
        expected_scan = min(size, size * (k + 1) // (matches_estimate + 1) + 1)
        # The candidate plan sorts the driver's positions and re-filters them
        # with the remaining predicates; the scan applies every filter to the
        # rows it touches.  Compare the two workloads directly.
        candidate_cost = best_estimate * max(1, len(filters))
        scan_cost = expected_scan * (1 + len(filters))
        if candidate_cost < scan_cost:
            candidates = candidate_thunk()
            remaining = [f for i, f in enumerate(filters) if i != filter_index]
            plan = QueryPlan(
                "candidates",
                matches_estimate,
                len(remaining),
                driver=attribute,
                candidate_count=len(candidates),
            )
            return _CompiledQuery(plan, remaining, candidates)
        plan = QueryPlan("scan", matches_estimate, len(filters))
        return _CompiledQuery(plan, filters, None)

    @staticmethod
    def _empty_plan(filter_count: int) -> _CompiledQuery:
        return _CompiledQuery(QueryPlan("empty", 0, filter_count), [], [])

    @staticmethod
    def _estimate_matches(size: int, estimates: List[int]) -> int:
        """Independence-assumption estimate of the conjunction's match count."""
        if size == 0:
            return 0
        fraction = 1.0
        for estimate in estimates:
            fraction *= estimate / size
        return int(size * fraction)

    # -- range predicates ---------------------------------------------- #
    def _compile_range(
        self, predicate: RangePredicate, memo: Dict[Tuple, object]
    ) -> Optional[Tuple[Optional[BlockFilter], Optional[int], Optional[Callable[[], List[int]]]]]:
        """Lower one range predicate; ``None`` means it matches nothing."""
        catalog = self._catalog
        attribute = predicate.attribute
        if not catalog.has_column(attribute):
            # The naive scan sees ``row.get(attribute) is None`` which fails
            # its isinstance check: no row can ever match.
            return None
        floats = catalog.float_column(attribute)
        if floats is None:
            # Mixed or non-numeric column: replicate the per-value numeric
            # check of the reference scan; no index support.
            raw = catalog.raw_column(attribute)
            assert raw is not None
            matches = predicate.matches
            block_filter: BlockFilter = lambda ranks, raw=raw, matches=matches: [
                i for i in ranks if is_numeric(raw[i]) and matches(float(raw[i]))
            ]
            return block_filter, None, None

        lower, upper = predicate.lower, predicate.upper
        include_lower, include_upper = predicate.include_lower, predicate.include_upper
        span_key = ("span", attribute, lower, upper, include_lower, include_upper)
        span = memo.get(span_key)
        if span is None:
            index = catalog.sorted_index(attribute)
            assert index is not None
            sorted_values, _ = index
            if lower == -math.inf:
                start = 0
            elif include_lower:
                start = bisect_left(sorted_values, lower)
            else:
                start = bisect_right(sorted_values, lower)
            if upper == math.inf:
                stop = len(sorted_values)
            elif include_upper:
                stop = bisect_right(sorted_values, upper)
            else:
                stop = bisect_left(sorted_values, upper)
            span = (start, max(start, stop))
            memo[span_key] = span
        start, stop = span  # type: ignore[misc]
        estimate = stop - start
        if estimate == 0:
            return None

        unbounded = (
            lower == -math.inf and upper == math.inf and include_lower and include_upper
        )
        block_filter = None if unbounded else self._float_range_filter(floats, predicate)

        def candidate_thunk(
            attribute: str = attribute, start: int = start, stop: int = stop
        ) -> Sequence[int]:
            key = ("range-candidates", attribute, start, stop)
            cached = memo.get(key)
            if cached is None:
                index = catalog.sorted_index(attribute)
                assert index is not None
                _, ranks_by_value = index
                cached = arrays.sorted_positions(ranks_by_value, start, stop)
                memo[key] = cached
            return cached  # type: ignore[return-value]

        return block_filter, estimate, candidate_thunk

    @staticmethod
    def _float_range_filter(
        column: Sequence[float], predicate: RangePredicate
    ) -> BlockFilter:
        # Dispatches on the column's buffer type: one vectorized comparison
        # per block under numpy, the reference list comprehension otherwise.
        return arrays.make_range_filter(
            column,
            predicate.lower,
            predicate.upper,
            predicate.include_lower,
            predicate.include_upper,
        )

    # -- membership predicates ----------------------------------------- #
    def _compile_membership(
        self, predicate: InPredicate, memo: Dict[Tuple, object]
    ) -> Optional[Tuple[Optional[BlockFilter], Optional[int], Optional[Callable[[], List[int]]]]]:
        """Lower one IN predicate; ``None`` means it matches nothing."""
        catalog = self._catalog
        attribute = predicate.attribute
        values = predicate.values
        if not catalog.has_column(attribute):
            # The naive scan tests ``row.get(attribute) in values``, i.e. a
            # constant ``None in values`` for every row.
            if None in values:
                return (None, None, None)  # always true: no filter needed
            return None
        raw = catalog.raw_column(attribute)
        assert raw is not None
        block_filter: BlockFilter = lambda ranks, raw=raw, values=values: [
            i for i in ranks if raw[i] in values
        ]
        postings = catalog.postings(attribute)
        if postings is None:
            return block_filter, None, None
        lists = [postings[value] for value in values if value in postings]
        estimate = sum(len(posting) for posting in lists)
        if estimate == 0:
            return None

        def candidate_thunk(
            attribute: str = attribute, lists: List[List[int]] = lists
        ) -> List[int]:
            key = ("in-candidates", attribute, tuple(sorted(map(str, values))))
            cached = memo.get(key)
            if cached is None:
                if len(lists) == 1:
                    cached = lists[0]
                else:
                    cached = sorted(chain.from_iterable(lists))
                memo[key] = cached
            return cached  # type: ignore[return-value]

        return block_filter, estimate, candidate_thunk

    # ------------------------------------------------------------------ #
    # Executor
    # ------------------------------------------------------------------ #
    def _run(self, compiled: _CompiledQuery, k: int) -> Tuple[List[Row], bool]:
        if compiled.plan.kind == "empty":
            return [], False
        if compiled.candidates is not None:
            hits = self._collect(compiled.candidates, compiled.filters, k + 1)
        else:
            hits = self._collect(self._catalog.scan_positions(), compiled.filters, k + 1)
        overflow = len(hits) > k
        return self._catalog.materialize_many(hits[:k]), overflow

    def _collect(
        self,
        positions: Sequence[int],
        filters: List[BlockFilter],
        limit: int,
    ) -> List[int]:
        """Apply ``filters`` to ``positions`` block by block, in rank order,
        stopping as soon as ``limit`` matches are known.

        ``positions`` and intermediate blocks may be any backend layout
        (``range`` slices, lists, or ndarray views) — hence the ``len``
        checks instead of truthiness, which is ambiguous for arrays.
        """
        hits: List[int] = []
        block_size = self._block
        total = len(positions)
        for start in range(0, total, block_size):
            block: Sequence[int] = positions[start : start + block_size]
            for block_filter in filters:
                block = block_filter(block)
                if len(block) == 0:
                    break
            if len(block) > 0:
                hits.extend(block)
                if len(hits) >= limit:
                    del hits[limit:]
                    break
        return hits


def create_engine(
    name: str,
    ranked_rows: Sequence[Mapping[str, object]],
    catalog: ColumnarCatalog,
) -> ExecutionEngine:
    """Instantiate an execution engine by name (``"indexed"`` or ``"naive"``)."""
    if name == "indexed":
        return IndexedColumnarEngine(catalog)
    if name == "naive":
        return NaiveScanEngine(ranked_rows)
    raise QueryError(
        f"unknown execution engine {name!r}; expected one of: {', '.join(ENGINE_NAMES)}"
    )
