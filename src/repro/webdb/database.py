"""The simulated hidden web database.

:class:`HiddenWebDatabase` plays the role of Blue Nile or Zillow: it owns a
catalog (a :class:`~repro.dataset.table.ColumnTable`), a *hidden* system
ranking function, and exposes nothing but the public top-k search interface.
The reranking service is only allowed to talk to it through
:meth:`HiddenWebDatabase.search`; the ground-truth helpers
(:meth:`all_matches`, :meth:`true_ranking`) exist solely so the tests and the
benchmark harness can compare against brute force, mirroring how the paper's
authors validated against the live sites.

Queries are answered by a pluggable execution engine
(:mod:`repro.webdb.engine`).  The default ``"indexed"`` engine runs over
columnar index structures (:mod:`repro.webdb.indexes`) with a selectivity-aware
planner; the seed row-at-a-time scan survives as the ``"naive"`` reference
engine, selectable via ``engine="naive"`` (or
:attr:`~repro.config.DatabaseConfig.engine`) for differential testing.  Both
preserve the top-k *contract* exactly: overflow/valid/underflow, stable
hidden-rank ordering, per-query latency and query counting.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dataset.schema import Schema
from repro.dataset.table import ColumnTable
from repro.exceptions import QueryError
from repro.webdb.counters import QueryCounter
from repro.webdb.delta import CatalogDelta
from repro.webdb.engine import QueryPlan, create_engine
from repro.webdb.indexes import ColumnarCatalog
from repro.webdb.interface import Outcome, SearchResult, TopKInterface
from repro.webdb.latency import LatencyModel
from repro.webdb.query import SearchQuery
from repro.webdb.ranking import SystemRankingFunction

Row = Dict[str, object]


class HiddenWebDatabase(TopKInterface):
    """In-process stand-in for a web database reachable only via top-k search.

    Parameters
    ----------
    catalog:
        The full tuple collection (never exposed directly to clients).
    schema:
        Public schema advertised by the search form.
    system_ranking:
        The proprietary ranking function used to order results.
    system_k:
        Number of tuples returned per query.
    latency:
        Per-query latency model (accounting and/or sleeping).
    validate_queries:
        When True (default) queries are validated against the schema, which is
        what a real site's form enforces; the crawler tests rely on invalid
        queries being rejected.
    name:
        Display name used in logs and the service's source registry.
    engine:
        Execution engine answering the queries: ``"indexed"`` (default, the
        vectorized columnar engine) or ``"naive"`` (the seed reference scan).
    """

    def __init__(
        self,
        catalog: ColumnTable,
        schema: Schema,
        system_ranking: SystemRankingFunction,
        system_k: int = 20,
        latency: Optional[LatencyModel] = None,
        validate_queries: bool = True,
        name: str = "webdb",
        engine: str = "indexed",
    ) -> None:
        if system_k <= 0:
            raise ValueError("system_k must be positive")
        self._schema = schema
        self._system_k = system_k
        self._latency = latency or LatencyModel.disabled()
        self._validate = validate_queries
        self._counter = QueryCounter()
        self._lock = threading.Lock()
        self.name = name

        # Materialize rows once, in hidden-rank order: both engines answer a
        # query with its first k+1 matches in this order.
        rows = catalog.to_rows()
        for row in rows:
            schema.validate_row(row)
        key = system_ranking.sort_key(schema.key)
        self._ranked_rows: List[Row] = sorted(rows, key=key)
        self._system_ranking = system_ranking
        self._by_key: Dict[object, Row] = {row[schema.key]: row for row in self._ranked_rows}
        if len(self._by_key) != len(self._ranked_rows):
            raise QueryError("catalog contains duplicate tuple keys")
        self._columns: List[str] = list(catalog.columns)
        self._engine_name_setting = engine
        self._columnar = ColumnarCatalog(self._ranked_rows, catalog.columns, schema.key)
        self._engine = create_engine(engine, self._ranked_rows, self._columnar)

    # ------------------------------------------------------------------ #
    # TopKInterface
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def system_k(self) -> int:
        return self._system_k

    @property
    def supports_batched_search(self) -> bool:
        """Batched search is advertised whenever the latency model only
        accounts (a sleeping model needs the thread pool's real
        concurrency to overlap its round trips)."""
        return not self._latency.sleep

    def search(self, query: SearchQuery) -> SearchResult:
        """Execute a top-k query.

        Returns the first ``system_k`` matching tuples in hidden-rank order and
        classifies the outcome as overflow / valid / underflow.
        """
        if self._validate:
            query.validate(self._schema)
        self._counter.increment()
        elapsed = self._latency.delay()
        matches, overflow = self._engine.execute(query, self._system_k)
        return self._build_result(query, matches, overflow, elapsed)

    def search_many(self, queries: Sequence[SearchQuery]) -> List[SearchResult]:
        """Execute a batch of top-k queries in one call.

        Each query is counted and charged latency exactly as if issued
        through :meth:`search`; the batch only amortizes the execution
        engine's per-group planning work (shared bound spans and candidate
        lists).  Validation runs for the whole batch up front, so a rejected
        query costs no query count at all.
        """
        materialized = list(queries)
        if self._validate:
            for query in materialized:
                query.validate(self._schema)
        if not materialized:
            return []
        self._counter.increment(len(materialized))
        elapsed = [self._latency.delay() for _ in materialized]
        executed = self._engine.execute_many(materialized, self._system_k)
        return [
            self._build_result(query, matches, overflow, seconds)
            for query, (matches, overflow), seconds in zip(materialized, executed, elapsed)
        ]

    def _build_result(
        self, query: SearchQuery, matches: List[Row], overflow: bool, elapsed: float
    ) -> SearchResult:
        if not matches:
            outcome = Outcome.UNDERFLOW
        elif overflow:
            outcome = Outcome.OVERFLOW
        else:
            outcome = Outcome.VALID
        return SearchResult(
            query=query,
            rows=tuple(matches),
            outcome=outcome,
            system_k=self._system_k,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def has_key(self, key: object) -> bool:
        """True when the catalog currently holds a tuple with this key."""
        return key in self._by_key

    def apply_delta(
        self,
        upserts: Sequence[Row] = (),
        deletes: Sequence[object] = (),
    ) -> CatalogDelta:
        """Apply a catalog mutation and return its :class:`CatalogDelta`.

        ``deletes`` (keys) are applied before ``upserts`` (full rows), so an
        upsert of a deleted key re-inserts it.  The returned delta summarizes
        every touched tuple *version* — the old row of each update or delete
        and the new row of each upsert — which is exactly what the caching
        layers need to decide what a change can affect.  Raises
        :class:`QueryError` on an unknown delete key or an invalid row; the
        catalog is not modified on error.
        """
        upsert_rows = [dict(row) for row in upserts]
        for row in upsert_rows:
            self._schema.validate_row(row)
        key_column = self._schema.key
        with self._lock:
            by_key = dict(self._by_key)
            touched: List[Row] = []
            for key in deletes:
                if key not in by_key:
                    raise QueryError(f"cannot delete unknown tuple key {key!r}")
                touched.append(by_key.pop(key))
            for row in upsert_rows:
                key = row[key_column]
                old = by_key.get(key)
                if old is not None:
                    touched.append(old)
                touched.append(row)
                by_key[key] = row
            if not touched:
                return CatalogDelta(namespace=self.name)
            sort_key = self._system_ranking.sort_key(key_column)
            ranked = sorted(by_key.values(), key=sort_key)
            columnar = ColumnarCatalog(ranked, self._columns, key_column)
            engine = create_engine(self._engine_name_setting, ranked, columnar)
            # Publish the rebuilt structures together only after every piece
            # succeeded: a failed rebuild must leave the old catalog serving.
            self._ranked_rows = ranked
            self._by_key = {row[key_column]: row for row in ranked}
            self._columnar = columnar
            self._engine = engine
            return CatalogDelta.from_rows(
                self.name,
                key_column,
                touched,
                upserts=len(upsert_rows),
                deletes=len(tuple(deletes)),
            )

    def queries_issued(self) -> int:
        """Number of search queries served so far."""
        return self._counter.count

    def reset_query_count(self) -> None:
        """Reset the query counter (used between benchmark repetitions)."""
        self._counter.reset()

    # ------------------------------------------------------------------ #
    # Ground-truth helpers (tests / benchmark harness only)
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of tuples in the catalog."""
        return len(self._ranked_rows)

    def all_matches(self, query: SearchQuery) -> List[Row]:
        """Every tuple matching ``query`` (bypasses the top-k truncation)."""
        return [dict(row) for row in self._ranked_rows if query.matches(row)]

    def count_matches(self, query: SearchQuery) -> int:
        """Number of tuples matching ``query``."""
        return sum(1 for row in self._ranked_rows if query.matches(row))

    def true_ranking(
        self,
        query: SearchQuery,
        score: Callable[[Row], float],
        limit: Optional[int] = None,
    ) -> List[Row]:
        """Ground-truth reranking of the query answers under ``score``
        (ascending), used to validate the algorithms."""
        matches = self.all_matches(query)
        matches.sort(key=lambda row: (score(row), str(row[self._schema.key])))
        if limit is not None:
            return matches[:limit]
        return matches

    def tuple_by_key(self, key: object) -> Row:
        """Fetch one tuple by its key (simulates opening its detail page)."""
        if key not in self._by_key:
            raise QueryError(f"unknown tuple key {key!r}")
        return dict(self._by_key[key])

    def attribute_values(self, attribute: str) -> List[float]:
        """All values of a numeric attribute (ground truth for tests)."""
        self._schema.require_numeric(attribute)
        return [float(row[attribute]) for row in self._ranked_rows]  # type: ignore[arg-type]

    def value_multiplicity(self, attribute: str) -> Dict[float, int]:
        """Histogram of value multiplicities for ``attribute`` — used to find
        general-positioning violations (values shared by more than ``k``
        tuples)."""
        counts: Dict[float, int] = {}
        for value in self.attribute_values(attribute):
            counts[value] = counts.get(value, 0) + 1
        return counts

    def system_rank_of(self, key: object) -> int:
        """Position of a tuple in the hidden global ranking (diagnostics).

        O(1): ranks are precomputed at construction."""
        rank = self._columnar.rank_of.get(key)
        if rank is None:
            raise QueryError(f"unknown tuple key {key!r}")
        return rank

    @property
    def engine_name(self) -> str:
        """Name of the active execution engine (``"indexed"`` / ``"naive"``)."""
        return self._engine.name

    def explain(self, query: SearchQuery) -> Optional[QueryPlan]:
        """The plan the indexed engine would pick for ``query``; ``None``
        under the naive reference engine (diagnostics / tests only)."""
        explain = getattr(self._engine, "explain", None)
        if explain is None:
            return None
        return explain(query, self._system_k)

    def describe(self) -> str:
        """One-line description for logs and the source registry."""
        return (
            f"{self.name}: {self.size} tuples, k={self._system_k}, "
            f"ranking={self._system_ranking.describe()}, engine={self._engine.name}"
        )


def database_pair_for_tests(
    catalog: ColumnTable,
    schema: Schema,
    system_ranking: SystemRankingFunction,
    system_k: int,
) -> Tuple[HiddenWebDatabase, HiddenWebDatabase]:
    """Create two databases over the same catalog: one latency-free for ground
    truth, one with accounting latency for timing experiments."""
    live = HiddenWebDatabase(
        catalog, schema, system_ranking, system_k=system_k, name="live"
    )
    timed = HiddenWebDatabase(
        catalog,
        schema,
        system_ranking,
        system_k=system_k,
        latency=LatencyModel.accounted(1.0),
        name="timed",
    )
    return live, timed
