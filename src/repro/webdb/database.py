"""The simulated hidden web database.

:class:`HiddenWebDatabase` plays the role of Blue Nile or Zillow: it owns a
catalog (a :class:`~repro.dataset.table.ColumnTable`), a *hidden* system
ranking function, and exposes nothing but the public top-k search interface.
The reranking service is only allowed to talk to it through
:meth:`HiddenWebDatabase.search`; the ground-truth helpers
(:meth:`all_matches`, :meth:`true_ranking`) exist solely so the tests and the
benchmark harness can compare against brute force, mirroring how the paper's
authors validated against the live sites.

Queries are answered by a pluggable execution engine
(:mod:`repro.webdb.engine`).  The default ``"indexed"`` engine runs over
columnar index structures (:mod:`repro.webdb.indexes`) with a selectivity-aware
planner; the seed row-at-a-time scan survives as the ``"naive"`` reference
engine, selectable via ``engine="naive"`` (or
:attr:`~repro.config.DatabaseConfig.engine`) for differential testing.  Both
preserve the top-k *contract* exactly: overflow/valid/underflow, stable
hidden-rank ordering, per-query latency and query counting.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dataset.schema import Schema
from repro.dataset.table import ColumnTable
from repro.exceptions import QueryError
from repro.webdb.counters import QueryCounter
from repro.webdb.delta import CatalogDelta
from repro.webdb.engine import QueryPlan, create_engine
from repro.webdb.indexes import ColumnarCatalog
from repro.webdb.interface import Outcome, SearchResult, TopKInterface
from repro.webdb.latency import LatencyModel
from repro.webdb.query import SearchQuery
from repro.webdb.ranking import SystemRankingFunction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sqlstore ↔ webdb)
    from repro.sqlstore.store import SQLiteTupleStore

Row = Dict[str, object]


def stream_sorted_columns(
    store: "SQLiteTupleStore",
    schema: Schema,
    system_ranking: SystemRankingFunction,
    batch_size: int = 10_000,
) -> Dict[str, List[object]]:
    """Read a tuple store batch by batch into hidden-rank-ordered columns.

    This is the streaming catalog-load path for large sources: row
    dictionaries exist only transiently, one batch at a time, instead of the
    whole catalog being materialized twice (once as ``ranked_rows``, once as
    the key index) the way the eager :class:`HiddenWebDatabase` constructor
    does.  Per row only its hidden sort key is retained; the catalog is then
    rank-ordered by permuting the accumulated columns.
    """
    column_order = schema.columns()
    columns: Dict[str, List[object]] = {name: [] for name in column_order}
    sort_keys: List[object] = []
    key_of = system_ranking.sort_key(schema.key)
    for batch in store.iter_rows(batch_size=batch_size):
        for row in batch:
            sort_keys.append(key_of(row))
            for name in column_order:
                columns[name].append(row[name])
    order = sorted(range(len(sort_keys)), key=sort_keys.__getitem__)
    del sort_keys
    for name in column_order:
        column = columns[name]
        columns[name] = [column[i] for i in order]
    return columns


class HiddenWebDatabase(TopKInterface):
    """In-process stand-in for a web database reachable only via top-k search.

    Parameters
    ----------
    catalog:
        The full tuple collection (never exposed directly to clients).
    schema:
        Public schema advertised by the search form.
    system_ranking:
        The proprietary ranking function used to order results.
    system_k:
        Number of tuples returned per query.
    latency:
        Per-query latency model (accounting and/or sleeping).
    validate_queries:
        When True (default) queries are validated against the schema, which is
        what a real site's form enforces; the crawler tests rely on invalid
        queries being rejected.
    name:
        Display name used in logs and the service's source registry.
    engine:
        Execution engine answering the queries: ``"indexed"`` (default, the
        vectorized columnar engine) or ``"naive"`` (the seed reference scan).
    columnar_backend:
        Storage backend for the columnar catalog
        (:mod:`repro.webdb.arrays`): ``"buffer"`` (default — numpy when
        importable, stdlib ``array`` otherwise), ``"array"``, ``"numpy"``,
        or ``"list"`` (the seed reference layout, kept for differential
        testing).
    """

    def __init__(
        self,
        catalog: ColumnTable,
        schema: Schema,
        system_ranking: SystemRankingFunction,
        system_k: int = 20,
        latency: Optional[LatencyModel] = None,
        validate_queries: bool = True,
        name: str = "webdb",
        engine: str = "indexed",
        columnar_backend: str = "buffer",
    ) -> None:
        # Materialize rows once, sort into hidden-rank order, transpose into
        # the columnar catalog — and drop the row dictionaries.  The catalog
        # (plus its key→rank map) is the only copy of the data; everything
        # row-shaped is materialized lazily from it.
        rows = catalog.to_rows()
        for row in rows:
            schema.validate_row(row)
        rows.sort(key=system_ranking.sort_key(schema.key))
        columnar = ColumnarCatalog(
            rows, catalog.columns, schema.key, backend=columnar_backend
        )
        del rows
        self._init_from_columnar(
            columnar,
            schema,
            system_ranking,
            system_k,
            latency,
            validate_queries,
            name,
            engine,
            columnar_backend,
        )

    @classmethod
    def from_columnar(
        cls,
        columnar: ColumnarCatalog,
        schema: Schema,
        system_ranking: SystemRankingFunction,
        *,
        system_k: int = 20,
        latency: Optional[LatencyModel] = None,
        validate_queries: bool = True,
        name: str = "webdb",
        engine: str = "indexed",
    ) -> "HiddenWebDatabase":
        """Wrap an already rank-ordered :class:`ColumnarCatalog` directly.

        The streaming loaders (:meth:`from_tuple_store`,
        :func:`~repro.webdb.federation.build_federation_from_store`) use
        this to construct sources without ever materializing the catalog as
        row dictionaries.  The caller vouches that the catalog's columns are
        in hidden-rank order under ``system_ranking``.
        """
        database = cls.__new__(cls)
        database._init_from_columnar(
            columnar,
            schema,
            system_ranking,
            system_k,
            latency,
            validate_queries,
            name,
            engine,
            columnar.backend,
        )
        return database

    @classmethod
    def from_tuple_store(
        cls,
        store: "SQLiteTupleStore",
        schema: Schema,
        system_ranking: SystemRankingFunction,
        *,
        system_k: int = 20,
        latency: Optional[LatencyModel] = None,
        validate_queries: bool = True,
        name: str = "webdb",
        engine: str = "indexed",
        columnar_backend: str = "buffer",
        batch_size: int = 10_000,
    ) -> "HiddenWebDatabase":
        """Build a database by streaming a catalog out of a SQLite store.

        Rows are read with a batched cursor
        (:meth:`~repro.sqlstore.store.SQLiteTupleStore.iter_rows`) and
        transposed incrementally: at no point does the whole catalog exist
        as Python row dictionaries, which is what makes 10⁶-tuple sources
        constructible within a sane memory ceiling.  Rows were validated on
        upsert, so the streamed values are trusted.
        """
        columns = stream_sorted_columns(
            store, schema, system_ranking, batch_size=batch_size
        )
        columnar = ColumnarCatalog.from_columns(
            columns, schema.columns(), schema.key, backend=columnar_backend
        )
        del columns
        return cls.from_columnar(
            columnar,
            schema,
            system_ranking,
            system_k=system_k,
            latency=latency,
            validate_queries=validate_queries,
            name=name,
            engine=engine,
        )

    def _init_from_columnar(
        self,
        columnar: ColumnarCatalog,
        schema: Schema,
        system_ranking: SystemRankingFunction,
        system_k: int,
        latency: Optional[LatencyModel],
        validate_queries: bool,
        name: str,
        engine: str,
        columnar_backend: str,
    ) -> None:
        if system_k <= 0:
            raise ValueError("system_k must be positive")
        self._schema = schema
        self._system_k = system_k
        self._latency = latency or LatencyModel.disabled()
        self._validate = validate_queries
        self._counter = QueryCounter()
        self._lock = threading.Lock()
        self.name = name
        self._system_ranking = system_ranking
        if len(columnar.rank_of) != columnar.size:
            raise QueryError("catalog contains duplicate tuple keys")
        self._columns: List[str] = columnar.column_order
        self._engine_name_setting = engine
        self._backend_setting = columnar_backend
        self._columnar = columnar
        #: Lazy row facade standing in for the seed's ``List[Row]`` copy.
        self._ranked_rows: Sequence[Row] = columnar.rows()
        self._engine = create_engine(engine, self._ranked_rows, self._columnar)
        # Per-attribute ground-truth memos (values / multiplicity histogram),
        # invalidated by apply_delta.
        self._attribute_values_memo: Dict[str, List[float]] = {}
        self._multiplicity_memo: Dict[str, Dict[float, int]] = {}

    # ------------------------------------------------------------------ #
    # TopKInterface
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def system_k(self) -> int:
        return self._system_k

    @property
    def supports_batched_search(self) -> bool:
        """Batched search is advertised whenever the latency model only
        accounts (a sleeping model needs the thread pool's real
        concurrency to overlap its round trips)."""
        return not self._latency.sleep

    def search(self, query: SearchQuery) -> SearchResult:
        """Execute a top-k query.

        Returns the first ``system_k`` matching tuples in hidden-rank order and
        classifies the outcome as overflow / valid / underflow.
        """
        if self._validate:
            query.validate(self._schema)
        self._counter.increment()
        elapsed = self._latency.delay()
        matches, overflow = self._engine.execute(query, self._system_k)
        return self._build_result(query, matches, overflow, elapsed)

    def search_many(self, queries: Sequence[SearchQuery]) -> List[SearchResult]:
        """Execute a batch of top-k queries in one call.

        Each query is counted and charged latency exactly as if issued
        through :meth:`search`; the batch only amortizes the execution
        engine's per-group planning work (shared bound spans and candidate
        lists).  Validation runs for the whole batch up front, so a rejected
        query costs no query count at all.
        """
        materialized = list(queries)
        if self._validate:
            for query in materialized:
                query.validate(self._schema)
        if not materialized:
            return []
        self._counter.increment(len(materialized))
        elapsed = [self._latency.delay() for _ in materialized]
        executed = self._engine.execute_many(materialized, self._system_k)
        return [
            self._build_result(query, matches, overflow, seconds)
            for query, (matches, overflow), seconds in zip(materialized, executed, elapsed)
        ]

    def _build_result(
        self, query: SearchQuery, matches: List[Row], overflow: bool, elapsed: float
    ) -> SearchResult:
        if not matches:
            outcome = Outcome.UNDERFLOW
        elif overflow:
            outcome = Outcome.OVERFLOW
        else:
            outcome = Outcome.VALID
        return SearchResult(
            query=query,
            rows=tuple(matches),
            outcome=outcome,
            system_k=self._system_k,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def has_key(self, key: object) -> bool:
        """True when the catalog currently holds a tuple with this key."""
        return key in self._columnar.rank_of

    def apply_delta(
        self,
        upserts: Sequence[Row] = (),
        deletes: Sequence[object] = (),
    ) -> CatalogDelta:
        """Apply a catalog mutation and return its :class:`CatalogDelta`.

        ``deletes`` (keys) are applied before ``upserts`` (full rows), so an
        upsert of a deleted key re-inserts it.  The returned delta summarizes
        every touched tuple *version* — the old row of each update or delete
        and the new row of each upsert — which is exactly what the caching
        layers need to decide what a change can affect.  Raises
        :class:`QueryError` on an unknown delete key or an invalid row; the
        catalog is not modified on error.
        """
        upsert_rows = [dict(row) for row in upserts]
        for row in upsert_rows:
            self._schema.validate_row(row)
        key_column = self._schema.key
        with self._lock:
            # Materialize the current catalog once for the rebuild; the dicts
            # die as soon as the new columnar snapshot is constructed.
            by_key: Dict[object, Row] = {
                row[key_column]: row
                for row in self._columnar.materialize_many(range(self._columnar.size))
            }
            touched: List[Row] = []
            for key in deletes:
                if key not in by_key:
                    raise QueryError(f"cannot delete unknown tuple key {key!r}")
                touched.append(by_key.pop(key))
            for row in upsert_rows:
                key = row[key_column]
                old = by_key.get(key)
                if old is not None:
                    touched.append(old)
                touched.append(row)
                by_key[key] = row
            if not touched:
                return CatalogDelta(namespace=self.name)
            sort_key = self._system_ranking.sort_key(key_column)
            ranked = sorted(by_key.values(), key=sort_key)
            columnar = ColumnarCatalog(
                ranked, self._columns, key_column, backend=self._backend_setting
            )
            rows_view = columnar.rows()
            engine = create_engine(self._engine_name_setting, rows_view, columnar)
            # Publish the rebuilt structures together only after every piece
            # succeeded: a failed rebuild must leave the old catalog serving.
            self._ranked_rows = rows_view
            self._columnar = columnar
            self._engine = engine
            self._attribute_values_memo = {}
            self._multiplicity_memo = {}
            return CatalogDelta.from_rows(
                self.name,
                key_column,
                touched,
                upserts=len(upsert_rows),
                deletes=len(tuple(deletes)),
            )

    def queries_issued(self) -> int:
        """Number of search queries served so far."""
        return self._counter.count

    def reset_query_count(self) -> None:
        """Reset the query counter (used between benchmark repetitions)."""
        self._counter.reset()

    # ------------------------------------------------------------------ #
    # Ground-truth helpers (tests / benchmark harness only)
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of tuples in the catalog."""
        return self._columnar.size

    def all_matches(self, query: SearchQuery) -> List[Row]:
        """Every tuple matching ``query`` (bypasses the top-k truncation)."""
        return [dict(row) for row in self._ranked_rows if query.matches(row)]

    def count_matches(self, query: SearchQuery) -> int:
        """Number of tuples matching ``query``."""
        return sum(1 for row in self._ranked_rows if query.matches(row))

    def true_ranking(
        self,
        query: SearchQuery,
        score: Callable[[Row], float],
        limit: Optional[int] = None,
    ) -> List[Row]:
        """Ground-truth reranking of the query answers under ``score``
        (ascending), used to validate the algorithms."""
        matches = self.all_matches(query)
        matches.sort(key=lambda row: (score(row), str(row[self._schema.key])))
        if limit is not None:
            return matches[:limit]
        return matches

    def tuple_by_key(self, key: object) -> Row:
        """Fetch one tuple by its key (simulates opening its detail page)."""
        rank = self._columnar.rank_of.get(key)
        if rank is None:
            raise QueryError(f"unknown tuple key {key!r}")
        return self._columnar.materialize(rank)

    def attribute_values(self, attribute: str) -> List[float]:
        """All values of a numeric attribute (ground truth for tests).

        Memoized per attribute (the seed re-scanned every row on every
        call); :meth:`apply_delta` invalidates the memo.  A fresh list is
        returned so callers can sort or mutate their copy.
        """
        self._schema.require_numeric(attribute)
        cached = self._attribute_values_memo.get(attribute)
        if cached is None:
            column = self._columnar.raw_column(attribute)
            assert column is not None  # require_numeric guarantees the column
            cached = [float(value) for value in column]  # type: ignore[arg-type]
            self._attribute_values_memo[attribute] = cached
        return list(cached)

    def value_multiplicity(self, attribute: str) -> Dict[float, int]:
        """Histogram of value multiplicities for ``attribute`` — used to find
        general-positioning violations (values shared by more than ``k``
        tuples).  Memoized per attribute alongside :meth:`attribute_values`.
        """
        cached = self._multiplicity_memo.get(attribute)
        if cached is None:
            counts: Dict[float, int] = {}
            for value in self.attribute_values(attribute):
                counts[value] = counts.get(value, 0) + 1
            self._multiplicity_memo[attribute] = counts
            cached = counts
        return dict(cached)

    def system_rank_of(self, key: object) -> int:
        """Position of a tuple in the hidden global ranking (diagnostics).

        O(1): ranks are precomputed at construction."""
        rank = self._columnar.rank_of.get(key)
        if rank is None:
            raise QueryError(f"unknown tuple key {key!r}")
        return rank

    @property
    def engine_name(self) -> str:
        """Name of the active execution engine (``"indexed"`` / ``"naive"``)."""
        return self._engine.name

    @property
    def columnar_backend(self) -> str:
        """Resolved columnar storage backend (``"list"``/``"array"``/``"numpy"``)."""
        return self._columnar.backend

    def explain(self, query: SearchQuery) -> Optional[QueryPlan]:
        """The plan the indexed engine would pick for ``query``; ``None``
        under the naive reference engine (diagnostics / tests only)."""
        explain = getattr(self._engine, "explain", None)
        if explain is None:
            return None
        return explain(query, self._system_k)

    def describe(self) -> str:
        """One-line description for logs and the source registry."""
        return (
            f"{self.name}: {self.size} tuples, k={self._system_k}, "
            f"ranking={self._system_ranking.describe()}, engine={self._engine.name}, "
            f"backend={self._columnar.backend}"
        )


def database_pair_for_tests(
    catalog: ColumnTable,
    schema: Schema,
    system_ranking: SystemRankingFunction,
    system_k: int,
) -> Tuple[HiddenWebDatabase, HiddenWebDatabase]:
    """Create two databases over the same catalog: one latency-free for ground
    truth, one with accounting latency for timing experiments."""
    live = HiddenWebDatabase(
        catalog, schema, system_ranking, system_k=system_k, name="live"
    )
    timed = HiddenWebDatabase(
        catalog,
        schema,
        system_ranking,
        system_k=system_k,
        latency=LatencyModel.accounted(1.0),
        name="timed",
    )
    return live, timed
