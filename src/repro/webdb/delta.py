"""Structured catalog change-sets for scoped invalidation.

A catalog mutation (``HiddenWebDatabase.apply_delta``) produces a
:class:`CatalogDelta`: the keys of every touched tuple plus a conservative
per-attribute summary of the *values* those tuples carried before and after
the change.  Each caching layer can then answer one question locally —
"could this cached object have surfaced a touched tuple?" — and retire only
what the change can actually affect, instead of cold-starting on a global
generation bump:

* a :class:`~repro.webdb.query.SearchQuery` cache entry changes only if some
  touched tuple version *matches* the query (:meth:`CatalogDelta.may_match_query`);
* a dense region changes only if some touched version lies inside its box
  (:meth:`CatalogDelta.may_intersect_sides` / :meth:`may_intersect_bounds`);
* a rerank feed changes only if its filter query can match a touched version
  (the hidden ranking is a per-row score, so untouched tuples never reorder).

The summary is *conservative*: it may flag an object whose exact answer is
unchanged (the per-attribute bounds form a bounding box over all touched
versions), but it never clears an object that a touched version matches —
that direction is what correctness rests on, and the randomized differential
suite checks it against the full-flush oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.webdb.query import RangePredicate, SearchQuery

Row = Mapping[str, object]


def _is_numeric(value: object) -> bool:
    """Genuinely numeric: bool is an ``int`` subclass but never a slider value."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass(frozen=True)
class CatalogDelta:
    """Summary of one catalog mutation.

    ``keys`` are the primary keys of every tuple touched (inserted, updated,
    or deleted).  ``numeric_bounds`` maps each attribute to the closed
    ``(lower, upper)`` hull of the numeric values any touched *version* (old
    or new) carried on it; ``categorical_values`` collects the exact value
    sets for membership predicates.  An attribute absent from both maps means
    no touched version carried a usable value on it — a predicate on that
    attribute can therefore never match a touched tuple.

    ``shard_deltas`` carries the per-shard sub-deltas of a federated
    mutation as ``(shard_index, delta)`` pairs; each sub-delta's
    ``namespace`` is the shard's cache namespace.
    """

    namespace: str
    keys: FrozenSet[object] = frozenset()
    numeric_bounds: Mapping[str, Tuple[float, float]] = field(default_factory=dict)
    categorical_values: Mapping[str, FrozenSet[object]] = field(default_factory=dict)
    upserts: int = 0
    deletes: int = 0
    shard_deltas: Tuple[Tuple[int, "CatalogDelta"], ...] = ()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_rows(
        namespace: str,
        key_column: str,
        touched_rows: Iterable[Row],
        upserts: int = 0,
        deletes: int = 0,
    ) -> "CatalogDelta":
        """Build a delta from every touched tuple *version*.

        ``touched_rows`` must include the old version of each updated tuple,
        the new version of each upserted tuple, and each deleted tuple —
        a cached answer is stale when any of those versions matched it.
        """
        keys: List[object] = []
        bounds: Dict[str, List[float]] = {}
        values: Dict[str, set] = {}
        for row in touched_rows:
            keys.append(row[key_column])
            for attribute, value in row.items():
                if _is_numeric(value):
                    numeric = float(value)
                    if not math.isnan(numeric):
                        hull = bounds.get(attribute)
                        if hull is None:
                            bounds[attribute] = [numeric, numeric]
                        else:
                            hull[0] = min(hull[0], numeric)
                            hull[1] = max(hull[1], numeric)
                values.setdefault(attribute, set()).add(value)
        return CatalogDelta(
            namespace=namespace,
            keys=frozenset(keys),
            numeric_bounds={name: (lo, hi) for name, (lo, hi) in bounds.items()},
            categorical_values={
                name: frozenset(collected) for name, collected in values.items()
            },
            upserts=upserts,
            deletes=deletes,
        )

    @staticmethod
    def merge(
        namespace: str, deltas: Sequence["CatalogDelta"]
    ) -> "CatalogDelta":
        """Union several deltas into one under a new namespace."""
        keys: set = set()
        bounds: Dict[str, Tuple[float, float]] = {}
        values: Dict[str, set] = {}
        upserts = 0
        deletes = 0
        for delta in deltas:
            keys.update(delta.keys)
            upserts += delta.upserts
            deletes += delta.deletes
            for attribute, (lo, hi) in delta.numeric_bounds.items():
                existing = bounds.get(attribute)
                if existing is None:
                    bounds[attribute] = (lo, hi)
                else:
                    bounds[attribute] = (min(existing[0], lo), max(existing[1], hi))
            for attribute, collected in delta.categorical_values.items():
                values.setdefault(attribute, set()).update(collected)
        return CatalogDelta(
            namespace=namespace,
            keys=frozenset(keys),
            numeric_bounds=bounds,
            categorical_values={
                name: frozenset(collected) for name, collected in values.items()
            },
            upserts=upserts,
            deletes=deletes,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when the mutation touched no tuples."""
        return not self.keys

    def contains_key(self, key: object) -> bool:
        """True when ``key`` belongs to a touched tuple."""
        return key in self.keys

    # ------------------------------------------------------------------ #
    # Matching (the invalidation predicate of every layer)
    # ------------------------------------------------------------------ #
    def may_match_query(self, query: SearchQuery) -> bool:
        """Could any touched tuple version match ``query``?

        Conservative per-attribute test: every predicate of the query must
        admit at least one touched value on its attribute.  ``False`` is a
        proof that no touched version matches the query (each predicate is
        necessary for a row match), so the cached object survives.
        """
        if self.is_empty:
            return False
        for predicate in query.ranges:
            hull = self.numeric_bounds.get(predicate.attribute)
            if hull is None:
                return False
            if predicate.intersect(
                RangePredicate(predicate.attribute, hull[0], hull[1])
            ) is None:
                return False
        for predicate in query.memberships:
            touched = self.categorical_values.get(predicate.attribute)
            if touched is None or not (predicate.values & touched):
                return False
        return True

    def may_intersect_sides(self, sides: Iterable[RangePredicate]) -> bool:
        """Could any touched version lie inside the box with these sides?

        Used by the dense-region index: a region's crawled row set is stale
        only if a touched tuple version falls inside its bounding box.
        """
        if self.is_empty:
            return False
        for side in sides:
            hull = self.numeric_bounds.get(side.attribute)
            if hull is None:
                return False
            if side.intersect(RangePredicate(side.attribute, hull[0], hull[1])) is None:
                return False
        return True

    def may_intersect_bounds(
        self, bounds: Mapping[str, Tuple[float, float]]
    ) -> bool:
        """Box-intersection test over plain ``{attr: (lo, hi)}`` bounds
        (the persisted :class:`~repro.sqlstore.dense_cache.StoredRegion` form)."""
        if self.is_empty:
            return False
        for attribute, (lo, hi) in bounds.items():
            hull = self.numeric_bounds.get(attribute)
            if hull is None:
                return False
            if hull[1] < lo or hull[0] > hi:
                return False
        return True

    # ------------------------------------------------------------------ #
    def with_namespace(self, namespace: str) -> "CatalogDelta":
        """The same change-set attributed to a different cache namespace."""
        return CatalogDelta(
            namespace=namespace,
            keys=self.keys,
            numeric_bounds=self.numeric_bounds,
            categorical_values=self.categorical_values,
            upserts=self.upserts,
            deletes=self.deletes,
            shard_deltas=self.shard_deltas,
        )

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary for logs and the statistics panel."""
        return {
            "namespace": self.namespace,
            "touched_keys": len(self.keys),
            "upserts": self.upserts,
            "deletes": self.deletes,
            "attributes": sorted(
                set(self.numeric_bounds) | set(self.categorical_values)
            ),
            "shards": len(self.shard_deltas),
        }


def merge_shard_deltas(
    namespace: str, shard_deltas: Sequence[Tuple[int, CatalogDelta]]
) -> CatalogDelta:
    """Merge per-shard deltas into a federation-level delta that keeps the
    shard breakdown attached (for shard-namespace cache invalidation)."""
    merged = CatalogDelta.merge(namespace, [delta for _, delta in shard_deltas])
    return CatalogDelta(
        namespace=merged.namespace,
        keys=merged.keys,
        numeric_bounds=merged.numeric_bounds,
        categorical_values=merged.categorical_values,
        upserts=merged.upserts,
        deletes=merged.deletes,
        shard_deltas=tuple(shard_deltas),
    )
