"""Columnar index structures backing the vectorized execution engine.

:class:`ColumnarCatalog` is the storage layer of the indexed execution engine
(:mod:`repro.webdb.engine`): the hidden-rank-ordered catalog transposed into
plain Python column lists, plus the per-attribute access structures the query
planner consumes:

* **raw columns** — one list per column, in hidden-rank order, holding the
  values exactly as they appear in the catalog (no type coercion), so result
  rows materialized from columns are byte-identical to the naive scan's
  ``dict(row)`` copies;
* **float columns** — a parallel ``float``-converted list for every column
  whose values are all numeric, used by the tight range-filter loops;
* **sorted value arrays** — ``(sorted values, rank positions)`` pairs usable
  with :mod:`bisect` for selectivity estimation and candidate extraction;
* **posting lists** — per distinct value, the sorted rank positions holding
  it, used for IN-predicate candidates;
* **key → rank** — O(1) lookup of a tuple's position in the hidden ranking.

Everything beyond the raw columns and the key→rank map is built lazily, on
first use, under a lock: most attributes of a catalog are never constrained,
and databases are constructed eagerly all over the test suite.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

Row = Dict[str, object]

#: The raw type pair behind :func:`is_numeric`; kept for isinstance checks.
NUMERIC_TYPES = (int, float)


def is_numeric(value: object) -> bool:
    """The exact value test range predicates apply: a real number.

    Mirrors :meth:`~repro.webdb.query.SearchQuery.matches` so both execution
    engines stay differentially identical: ``bool`` is excluded (``True``
    must not satisfy a range containing ``1.0`` even though it is an ``int``
    subclass) and ``NaN`` is excluded (it satisfies no range).
    """
    if isinstance(value, bool) or not isinstance(value, NUMERIC_TYPES):
        return False
    return not (isinstance(value, float) and math.isnan(value))


class ColumnarCatalog:
    """Column-major snapshot of a catalog in hidden-rank order.

    Parameters
    ----------
    ranked_rows:
        The catalog rows, already sorted by the hidden system ranking.
    column_order:
        Column names in the order the naive scan's row dictionaries carry
        them; materialized rows preserve it so both engines return
        byte-identical dictionaries.
    key_column:
        Name of the unique tuple identifier column.
    """

    def __init__(
        self,
        ranked_rows: Sequence[Mapping[str, object]],
        column_order: Sequence[str],
        key_column: str,
    ) -> None:
        self._order: List[str] = list(column_order)
        self._names = frozenset(self._order)
        self.key_column = key_column
        self.size = len(ranked_rows)
        self._rows = ranked_rows
        #: key → position in the hidden global ranking (O(1) ``system_rank_of``).
        self.rank_of: Dict[object, int] = {
            row[key_column]: rank for rank, row in enumerate(ranked_rows)
        }
        self._lock = threading.RLock()
        # The transpose itself is lazy too: a database on the naive reference
        # engine only ever touches ``rank_of``.
        self._raw: Optional[Dict[str, List[object]]] = None
        self._float_columns: Dict[str, Optional[List[float]]] = {}
        self._sorted_indexes: Dict[str, Optional[Tuple[List[float], List[int]]]] = {}
        self._postings: Dict[str, Optional[Dict[object, List[int]]]] = {}

    def _columns(self) -> Dict[str, List[object]]:
        """The transposed raw columns, built on first use."""
        if self._raw is None:
            with self._lock:
                if self._raw is None:
                    self._raw = {
                        name: [row[name] for row in self._rows] for name in self._order
                    }
        return self._raw

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def column_order(self) -> List[str]:
        """Column names in materialization order."""
        return list(self._order)

    def has_column(self, name: str) -> bool:
        """True when the catalog stores a column called ``name``."""
        return name in self._names

    def raw_column(self, name: str) -> Optional[List[object]]:
        """The raw value list of ``name`` in rank order (shared, do not
        mutate), or ``None`` for an unknown column."""
        return self._columns().get(name)

    # ------------------------------------------------------------------ #
    # Lazy index structures
    # ------------------------------------------------------------------ #
    def float_column(self, name: str) -> Optional[List[float]]:
        """``float``-converted column for fully numeric columns.

        Returns ``None`` when the column is unknown or holds any non-numeric
        value (including ``bool`` and ``NaN``, which range predicates reject)
        — the engine then falls back to the per-value check the naive scan
        performs.
        """
        if name not in self._float_columns:
            with self._lock:
                if name not in self._float_columns:
                    column = self._columns().get(name)
                    if column is None or not all(
                        is_numeric(value) for value in column
                    ):
                        self._float_columns[name] = None
                    else:
                        self._float_columns[name] = [float(value) for value in column]
        return self._float_columns[name]

    def sorted_index(self, name: str) -> Optional[Tuple[List[float], List[int]]]:
        """``(sorted values, rank positions)`` for a fully numeric column.

        ``bisect`` over the sorted values yields both an exact match count
        (selectivity) and, via the parallel rank array, the candidate rank
        positions of a range predicate.  ``None`` when the column is not
        fully numeric.
        """
        if name not in self._sorted_indexes:
            with self._lock:
                if name not in self._sorted_indexes:
                    floats = self.float_column(name)
                    if floats is None:
                        self._sorted_indexes[name] = None
                    else:
                        pairs = sorted(zip(floats, range(len(floats))))
                        self._sorted_indexes[name] = (
                            [value for value, _ in pairs],
                            [rank for _, rank in pairs],
                        )
        return self._sorted_indexes[name]

    def postings(self, name: str) -> Optional[Dict[object, List[int]]]:
        """Posting lists: distinct value → sorted rank positions holding it.

        Built for any column with hashable values (categorical drop-downs in
        practice); ``None`` when the column is unknown or a value is
        unhashable.
        """
        if name not in self._postings:
            with self._lock:
                if name not in self._postings:
                    column = self._columns().get(name)
                    if column is None:
                        self._postings[name] = None
                    else:
                        table: Dict[object, List[int]] = {}
                        try:
                            for rank, value in enumerate(column):
                                table.setdefault(value, []).append(rank)
                        except TypeError:  # unhashable value somewhere
                            self._postings[name] = None
                        else:
                            self._postings[name] = table
        return self._postings[name]

    # ------------------------------------------------------------------ #
    # Row materialization
    # ------------------------------------------------------------------ #
    def materialize(self, rank: int) -> Row:
        """Build a fresh row dictionary for the tuple at ``rank``."""
        raw = self._columns()
        return {name: raw[name][rank] for name in self._order}

    def materialize_many(self, ranks: Sequence[int]) -> List[Row]:
        """Fresh row dictionaries for ``ranks``, in the given order."""
        raw = self._columns()
        order = self._order
        return [{name: raw[name][rank] for name in order} for rank in ranks]
