"""Columnar index structures backing the vectorized execution engine.

:class:`ColumnarCatalog` is the storage layer of the indexed execution engine
(:mod:`repro.webdb.engine`): the hidden-rank-ordered catalog transposed into
columns, plus the per-attribute access structures the query planner consumes:

* **raw columns** — one column per attribute, in hidden-rank order, holding
  the values exactly as they appear in the catalog, so result rows
  materialized from columns are byte-identical to the naive scan's
  ``dict(row)`` copies.  Under the buffer backends
  (:mod:`repro.webdb.arrays`), uniformly-typed numeric columns are packed
  into ``array('d')``/``array('q')`` buffers (numpy views when numpy is
  importable) — 8 bytes per value instead of a pointer plus a boxed object;
* **float columns** — a parallel ``float``-converted column for every column
  whose values are all numeric, used by the tight range-filter loops;
* **sorted value arrays** — ``(sorted values, rank positions)`` pairs usable
  with :mod:`bisect` for selectivity estimation and candidate extraction;
* **posting lists** — per distinct value, the sorted rank positions holding
  it, used for IN-predicate candidates;
* **key → rank** — O(1) lookup of a tuple's position in the hidden ranking.

Everything beyond the raw columns and the key→rank map is built lazily, on
first use, under a lock: most attributes of a catalog are never constrained,
and databases are constructed eagerly all over the test suite.

Row *materialization* is lazy in the other direction: the catalog never
stores row dictionaries.  :meth:`ColumnarCatalog.materialize` builds a fresh
dictionary from the columns on demand, and :meth:`ColumnarCatalog.rows`
exposes the whole catalog as a lazy, read-only row sequence so reference
paths (the naive scan engine, ground-truth helpers) keep working without the
catalog ever being held twice in memory.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.webdb import arrays

Row = Dict[str, object]

#: The raw type pair behind :func:`is_numeric`; kept for isinstance checks.
NUMERIC_TYPES = (int, float)


def is_numeric(value: object) -> bool:
    """The exact value test range predicates apply: a real number.

    Mirrors :meth:`~repro.webdb.query.SearchQuery.matches` so both execution
    engines stay differentially identical: ``bool`` is excluded (``True``
    must not satisfy a range containing ``1.0`` even though it is an ``int``
    subclass) and ``NaN`` is excluded (it satisfies no range).
    """
    if isinstance(value, bool) or not isinstance(value, NUMERIC_TYPES):
        return False
    return not (isinstance(value, float) and math.isnan(value))


class CatalogRowView(Sequence):
    """Lazy, read-only row-sequence facade over a :class:`ColumnarCatalog`.

    Each access materializes a fresh row dictionary, so holding the view
    costs nothing beyond the catalog itself.  Used wherever the seed code
    kept a ``List[Row]`` of the ranked catalog (the naive reference engine,
    ground-truth scans).
    """

    __slots__ = ("_catalog",)

    def __init__(self, catalog: "ColumnarCatalog") -> None:
        self._catalog = catalog

    def __len__(self) -> int:
        return self._catalog.size

    def __getitem__(self, index):
        size = self._catalog.size
        if isinstance(index, slice):
            return [self._catalog.materialize(i) for i in range(*index.indices(size))]
        if index < 0:
            index += size
        if not 0 <= index < size:
            raise IndexError(f"row index {index} out of range (0..{size - 1})")
        return self._catalog.materialize(index)

    def __iter__(self) -> Iterator[Row]:
        materialize = self._catalog.materialize
        for rank in range(self._catalog.size):
            yield materialize(rank)


class ColumnarCatalog:
    """Column-major snapshot of a catalog in hidden-rank order.

    Parameters
    ----------
    ranked_rows:
        The catalog rows, already sorted by the hidden system ranking.  The
        rows are transposed at construction and **not retained** — the
        columns are the only copy of the catalog.
    column_order:
        Column names in the order the naive scan's row dictionaries carry
        them; materialized rows preserve it so both engines return
        byte-identical dictionaries.
    key_column:
        Name of the unique tuple identifier column.
    backend:
        Storage backend for numeric columns and rank arrays (see
        :mod:`repro.webdb.arrays`): ``"list"`` (the seed reference layout,
        default for direct construction), ``"array"``, ``"numpy"``, or
        ``"buffer"`` (numpy when importable, stdlib ``array`` otherwise).
    """

    def __init__(
        self,
        ranked_rows: Sequence[Mapping[str, object]],
        column_order: Sequence[str],
        key_column: str,
        backend: str = "list",
    ) -> None:
        columns: Dict[str, List[object]] = {
            name: [row[name] for row in ranked_rows] for name in column_order
        }
        self._init_from_columns(columns, column_order, key_column, backend)

    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, Sequence[object]],
        column_order: Sequence[str],
        key_column: str,
        backend: str = "list",
    ) -> "ColumnarCatalog":
        """Build a catalog directly from rank-ordered columns.

        This is the streaming-load path: callers that read a catalog batch
        by batch (e.g. from :class:`~repro.sqlstore.store.SQLiteTupleStore`)
        accumulate columns and never materialize row dictionaries at all.
        The column sequences are adopted as-is (lists are not copied).
        """
        adopted = {
            name: column if isinstance(column, list) else list(column)
            for name, column in ((name, columns[name]) for name in column_order)
        }
        catalog = cls.__new__(cls)
        catalog._init_from_columns(adopted, column_order, key_column, backend)
        return catalog

    def _init_from_columns(
        self,
        columns: Dict[str, List[object]],
        column_order: Sequence[str],
        key_column: str,
        backend: str,
    ) -> None:
        self._order: List[str] = list(column_order)
        self._names = frozenset(self._order)
        self.key_column = key_column
        self.backend = arrays.resolve_backend(backend)
        sizes = {len(column) for column in columns.values()} or {0}
        if len(sizes) > 1:
            raise ValueError(f"ragged catalog columns: {sorted(sizes)}")
        self.size = sizes.pop()
        # Pack uniformly-typed numeric columns into compact buffers; object
        # columns (keys, categoricals, mixed/NaN columns) stay as lists so
        # materialized rows return the original value objects.
        self._raw: Dict[str, object] = {
            name: arrays.pack_raw_column(columns[name], self.backend)
            for name in self._order
        }
        #: key → position in the hidden global ranking (O(1) ``system_rank_of``).
        self.rank_of: Dict[object, int] = {
            key: rank for rank, key in enumerate(self._raw[key_column])
        }
        self._lock = threading.RLock()
        self._float_columns: Dict[str, Optional[object]] = {}
        self._sorted_indexes: Dict[str, Optional[Tuple[object, object]]] = {}
        self._postings: Dict[str, Optional[Dict[object, List[int]]]] = {}
        self._positions: Optional[Sequence[int]] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def column_order(self) -> List[str]:
        """Column names in materialization order."""
        return list(self._order)

    def has_column(self, name: str) -> bool:
        """True when the catalog stores a column called ``name``."""
        return name in self._names

    def raw_column(self, name: str) -> Optional[Sequence[object]]:
        """The raw value column of ``name`` in rank order (shared, do not
        mutate), or ``None`` for an unknown column.  A list under the
        ``"list"`` backend; possibly a compact buffer under the others."""
        return self._raw.get(name)

    def rows(self) -> CatalogRowView:
        """The catalog as a lazy read-only sequence of row dictionaries."""
        return CatalogRowView(self)

    def scan_positions(self) -> Sequence[int]:
        """The full rank-position sequence, in the backend's layout (cached)."""
        if self._positions is None:
            with self._lock:
                if self._positions is None:
                    self._positions = arrays.position_space(self.size, self.backend)
        return self._positions

    # ------------------------------------------------------------------ #
    # Lazy index structures
    # ------------------------------------------------------------------ #
    def float_column(self, name: str) -> Optional[Sequence[float]]:
        """``float``-converted column for fully numeric columns.

        Returns ``None`` when the column is unknown or holds any non-numeric
        value (including ``bool`` and ``NaN``, which range predicates reject)
        — the engine then falls back to the per-value check the naive scan
        performs.  The result is backend-typed: a list under ``"list"``, an
        ``array('d')`` under ``"array"``, a float64 ndarray under ``"numpy"``.
        """
        if name not in self._float_columns:
            with self._lock:
                if name not in self._float_columns:
                    self._float_columns[name] = self._build_float_column(name)
        return self._float_columns[name]

    def _build_float_column(self, name: str) -> Optional[Sequence[float]]:
        column = self._raw.get(name)
        if column is None:
            return None
        if arrays.is_float_buffer(column):
            # Raw buffers are packed only from NaN-free pure-float columns,
            # so the raw buffer *is* the float column — zero extra memory
            # (the numpy backend wraps it in a zero-copy ndarray view).
            return arrays.float_buffer(column, self.backend)
        if arrays.is_int_buffer(column):
            return arrays.float_buffer([float(value) for value in column], self.backend)
        # Object column: one fused pass that converts as it validates and
        # bails on the first non-numeric value (the seed implementation
        # scanned the column twice — an ``all(is_numeric)`` pass, then a
        # conversion pass).
        converted: List[float] = []
        append = converted.append
        for value in column:
            if not is_numeric(value):
                return None
            append(float(value))
        return arrays.float_buffer(converted, self.backend)

    def sorted_index(self, name: str) -> Optional[Tuple[Sequence[float], Sequence[int]]]:
        """``(sorted values, rank positions)`` for a fully numeric column.

        ``bisect`` over the sorted values yields both an exact match count
        (selectivity) and, via the parallel rank array, the candidate rank
        positions of a range predicate.  ``None`` when the column is not
        fully numeric.
        """
        if name not in self._sorted_indexes:
            with self._lock:
                if name not in self._sorted_indexes:
                    floats = self.float_column(name)
                    if floats is None:
                        self._sorted_indexes[name] = None
                    else:
                        self._sorted_indexes[name] = arrays.stable_argsort(
                            floats, self.backend
                        )
        return self._sorted_indexes[name]

    def postings(self, name: str) -> Optional[Dict[object, List[int]]]:
        """Posting lists: distinct value → sorted rank positions holding it.

        Built for any column with hashable values (categorical drop-downs in
        practice); ``None`` when the column is unknown or a value is
        unhashable.
        """
        if name not in self._postings:
            with self._lock:
                if name not in self._postings:
                    column = self._raw.get(name)
                    if column is None:
                        self._postings[name] = None
                    else:
                        table: Dict[object, List[int]] = {}
                        try:
                            for rank, value in enumerate(column):
                                table.setdefault(value, []).append(rank)
                        except TypeError:  # unhashable value somewhere
                            self._postings[name] = None
                        else:
                            self._postings[name] = table
        return self._postings[name]

    # ------------------------------------------------------------------ #
    # Row materialization
    # ------------------------------------------------------------------ #
    def materialize(self, rank: int) -> Row:
        """Build a fresh row dictionary for the tuple at ``rank``."""
        raw = self._raw
        return {name: raw[name][rank] for name in self._order}

    def materialize_many(self, ranks: Sequence[int]) -> List[Row]:
        """Fresh row dictionaries for ``ranks``, in the given order."""
        raw = self._raw
        order = self._order
        return [{name: raw[name][rank] for name in order} for rank in ranks]
