"""Deterministic fault injection for simulated hidden-web sources.

The paper's setting is reranking over *remote* sources, which fail: queries
time out, endpoints throw transient errors, whole replicas go dark and come
back.  Following the discrete-event-simulation approach of Bhosekar et al.
(arXiv:2006.06764), faults here are a *deterministic schedule*, not live
randomness: a :class:`FaultPlan` is seeded, and the fault drawn for the N-th
query through a given injector is a pure function of ``(seed, N)``.  Replaying
the same query sequence replays the same faults, so resilience claims become
differential gates (byte-identical pages after recovery) instead of flaky
assertions.

:class:`FaultInjector` wraps any :class:`~repro.webdb.interface.TopKInterface`
transparently — schema, ``system_k``, ``apply_delta``, ground-truth helpers
all pass through — and perturbs only ``search``:

* ``TRANSIENT`` — the query raises :class:`SourceUnavailableError` (a retry
  may succeed: the next attempt draws the next schedule index);
* ``TIMEOUT`` — the query raises :class:`SourceTimeoutError` after *paying*
  ``timeout_seconds`` of simulated wall time (the cost an impatient caller
  eats before giving up);
* ``SLOW`` — the query succeeds but its ``elapsed_seconds`` is inflated by a
  latency spike;
* fail-stop windows — between ``fail_from`` and ``fail_until`` (query-index
  space) *every* query times out, modelling a crashed shard that later
  recovers.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataset.schema import Schema
from repro.exceptions import SourceTimeoutError, SourceUnavailableError
from repro.webdb.interface import SearchResult, TopKInterface
from repro.webdb.query import SearchQuery


class FaultKind(Enum):
    """What the schedule does to one query."""

    NONE = "none"
    TRANSIENT = "transient"
    TIMEOUT = "timeout"
    SLOW = "slow"
    FAIL_STOP = "fail_stop"


# Knuth's multiplicative hash constant: decorrelates per-index streams drawn
# from one seed without the schedules of adjacent indexes resembling each
# other.
_INDEX_HASH = 2654435761


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable fault schedule.

    Parameters
    ----------
    seed:
        Schedule seed.  The fault at query index ``i`` is a pure function of
        ``(seed, i)`` — two injectors with equal plans fed the same query
        sequence fail identically.
    transient_rate:
        Probability (per query index) of a retryable transient error.
    timeout_rate:
        Probability of a per-attempt timeout (pays ``timeout_seconds``).
    slow_rate:
        Probability of a latency spike (query succeeds, elapsed inflated).
    timeout_seconds:
        Simulated seconds a timed-out attempt costs before it fails, and the
        floor of a slow query's inflated latency.
    slow_factor:
        Multiplier applied to ``timeout_seconds`` for latency-spike draws.
    fail_from / fail_until:
        Fail-stop window in query-index space: every query whose schedule
        index ``i`` satisfies ``fail_from <= i < fail_until`` times out
        unconditionally.  ``fail_until=None`` means the outage never heals.
    """

    seed: int = 0
    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    slow_rate: float = 0.0
    timeout_seconds: float = 1.0
    slow_factor: float = 4.0
    fail_from: Optional[int] = None
    fail_until: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("transient_rate", "timeout_rate", "slow_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.timeout_seconds < 0:
            raise ValueError("timeout_seconds must be non-negative")

    @property
    def is_noop(self) -> bool:
        """True when the plan can never perturb a query."""
        return (
            self.transient_rate == 0.0
            and self.timeout_rate == 0.0
            and self.slow_rate == 0.0
            and self.fail_from is None
        )

    def in_fail_window(self, index: int) -> bool:
        """Whether query index ``index`` falls inside the fail-stop window."""
        if self.fail_from is None or index < self.fail_from:
            return False
        return self.fail_until is None or index < self.fail_until

    def fault_at(self, index: int) -> Tuple[FaultKind, float]:
        """The fault scheduled for query index ``index``.

        Returns ``(kind, cost_seconds)`` where ``cost_seconds`` is the
        simulated time the fault adds to the round trip.  Pure: the same
        ``(plan, index)`` always yields the same answer.
        """
        if self.in_fail_window(index):
            return FaultKind.FAIL_STOP, self.timeout_seconds
        rng = random.Random(self.seed * _INDEX_HASH + index)
        draw = rng.random()
        threshold = self.transient_rate
        if draw < threshold:
            return FaultKind.TRANSIENT, 0.0
        threshold += self.timeout_rate
        if draw < threshold:
            return FaultKind.TIMEOUT, self.timeout_seconds
        threshold += self.slow_rate
        if draw < threshold:
            spike = self.timeout_seconds * (1.0 + rng.random() * (self.slow_factor - 1.0))
            return FaultKind.SLOW, spike
        return FaultKind.NONE, 0.0

    def with_fail_window(self, start: int, stop: Optional[int] = None) -> "FaultPlan":
        """Copy of this plan with a fail-stop window set."""
        return replace(self, fail_from=start, fail_until=stop)


class FaultInjector(TopKInterface):
    """Wrap a :class:`TopKInterface` with a scheduled fault stream.

    The injector keeps a monotone *schedule index*: each query it actively
    perturbs (or passes through) consumes one index, so the fault sequence is
    a deterministic function of the plan and the number of queries seen.
    ``deactivate()`` freezes the index and makes the injector transparent —
    the chaos harness heals a federation without perturbing the schedule
    replay of a later phase.  All unknown attributes proxy to the wrapped
    interface, so the injector composes with instrumentation, caching, and
    federation layers that reach for ``name`` / ``apply_delta`` / ground
    truth helpers.
    """

    def __init__(self, inner: TopKInterface, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._index = 0
        self._active = True
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {kind.value: 0 for kind in FaultKind}
        self._injected_seconds = 0.0

    # ------------------------------------------------------------------ #
    # TopKInterface contract
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        return self._inner.schema

    @property
    def system_k(self) -> int:
        return self._inner.system_k

    @property
    def key_column(self) -> str:
        return self._inner.key_column

    @property
    def supports_batched_search(self) -> bool:
        # Faults are drawn per query; batching would let a whole group dodge
        # (or share) one schedule slot.
        return False

    def search(self, query: SearchQuery) -> SearchResult:
        with self._lock:
            if not self._active:
                kind, cost = FaultKind.NONE, 0.0
            else:
                kind, cost = self._plan.fault_at(self._index)
                self._index += 1
            self._counts[kind.value] += 1
            if kind in (FaultKind.TIMEOUT, FaultKind.FAIL_STOP, FaultKind.SLOW):
                self._injected_seconds += cost
        name = getattr(self._inner, "name", "source")
        if kind is FaultKind.TRANSIENT:
            raise SourceUnavailableError(
                f"{name}: scheduled transient fault", source=name
            )
        if kind in (FaultKind.TIMEOUT, FaultKind.FAIL_STOP):
            raise SourceTimeoutError(
                f"{name}: scheduled {kind.value} "
                f"(paid {cost:.3f}s waiting)",
                source=name,
                elapsed_seconds=cost,
            )
        result = self._inner.search(query)
        if kind is FaultKind.SLOW:
            result = replace(result, elapsed_seconds=result.elapsed_seconds + cost)
        return result

    def search_many(self, queries: Sequence[SearchQuery]) -> List[SearchResult]:
        return [self.search(query) for query in queries]

    def queries_issued(self) -> int:
        return self._inner.queries_issued()

    # ------------------------------------------------------------------ #
    # Schedule control (chaos harness / tests)
    # ------------------------------------------------------------------ #
    @property
    def plan(self) -> FaultPlan:
        """The active fault plan."""
        with self._lock:
            return self._plan

    @property
    def active(self) -> bool:
        """Whether the injector currently perturbs queries."""
        with self._lock:
            return self._active

    @property
    def schedule_index(self) -> int:
        """Schedule indexes consumed so far (faulted + clean, while active)."""
        with self._lock:
            return self._index

    def activate(self) -> None:
        """Resume injecting faults (the schedule index continues)."""
        with self._lock:
            self._active = True

    def deactivate(self) -> None:
        """Heal the source: pass every query through untouched.  The schedule
        index freezes, so reactivating resumes the plan where it left off."""
        with self._lock:
            self._active = False

    def reset_schedule(self) -> None:
        """Rewind the schedule index to 0 (replay the plan from the start)."""
        with self._lock:
            self._index = 0

    def set_plan(self, plan: FaultPlan) -> None:
        """Swap in a new plan and rewind the schedule (a bench phase switches
        from a transient-noise plan to a fail-stop outage, say)."""
        with self._lock:
            self._plan = plan
            self._index = 0
            self._active = True

    def fault_counts(self) -> Dict[str, int]:
        """Per-kind counts of queries seen (``"none"`` counts clean passes)."""
        with self._lock:
            return dict(self._counts)

    def describe(self) -> Dict[str, object]:
        """JSON-friendly injector snapshot for statistics panels."""
        with self._lock:
            return {
                "active": self._active,
                "schedule_index": self._index,
                "injected_seconds": self._injected_seconds,
                "faults": {
                    kind: count
                    for kind, count in self._counts.items()
                    if kind != FaultKind.NONE.value and count
                },
            }

    # ------------------------------------------------------------------ #
    # Transparency
    # ------------------------------------------------------------------ #
    @property
    def inner(self) -> TopKInterface:
        """The wrapped interface."""
        return self._inner

    def __getattr__(self, name: str):
        # Everything this class does not implement (name, size, apply_delta,
        # has_key, true_ranking, engine_name, ...) proxies to the wrapped
        # interface, so downstream layers see the source they expect.
        return getattr(self._inner, name)


def find_injector(interface: object) -> Optional[FaultInjector]:
    """Walk a wrapper chain (instrumentation, resilience, caching) down to
    the first :class:`FaultInjector`, or ``None`` when the chain is clean."""
    seen = 0
    current = interface
    while current is not None and seen < 16:
        if isinstance(current, FaultInjector):
            return current
        current = getattr(current, "inner", None) or getattr(current, "_inner", None)
        seen += 1
    return None
