"""Resilience policies for unreliable sources: retries, breakers, deadlines.

:mod:`repro.webdb.faults` makes sources fail on a deterministic schedule;
this module is the other half — the policies that keep a federation serving
through those faults:

* :class:`RetryPolicy` — capped exponential backoff with *decorrelated
  jitter* (the AWS architecture-blog variant: each delay is drawn uniformly
  from ``[base, 3 * previous]`` and capped), seeded so the delay sequence is
  replayable, plus an optional cumulative retry budget so a dying source
  cannot consume unbounded retry work;
* :class:`CircuitBreaker` — the classic closed → open → half-open automaton
  per source/shard.  While open, calls are rejected *without* paying the
  source's round trip; after ``recovery_seconds`` a single half-open probe is
  admitted, and its outcome closes or re-opens the circuit;
* :class:`Deadline` — a per-query budget of *simulated* seconds threaded
  through scatter-gather: every round trip, timeout, and backoff wait is
  charged against it, and once exhausted the remaining shards are skipped
  (partial answer) or the query fails with
  :class:`~repro.exceptions.DeadlineExceededError`.
* :class:`SourceGuard` — one source/shard's retry loop wired through its
  breaker, the unit the federation and the query engine call.

Delays are charged in simulated time (and against the deadline), never slept:
the chaos benchmarks gate on deterministic counters, not wall clock.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    SourceUnavailableError,
)
from repro.webdb.interface import SearchResult, TopKInterface
from repro.webdb.query import SearchQuery

_TOKEN_HASH = 2654435761


@dataclass(frozen=True)
class ResilienceConfig:
    """Resilience knobs for one reranker's sources.

    With perfectly reliable sources the defaults change nothing: no fault
    means no retry, a breaker that never sees a failure never opens, and the
    default deadline is unlimited — which is why this config can be on by
    default.

    Parameters
    ----------
    max_attempts:
        Attempts per query (1 initial + ``max_attempts - 1`` retries).
    backoff_base_seconds / backoff_cap_seconds:
        Bounds of the decorrelated-jitter backoff; delays are charged to the
        query's deadline in simulated time.
    backoff_seed:
        Seed of the replayable jitter stream.
    retry_budget:
        Optional cumulative cap on retries across a guard's lifetime; once
        spent, failures are not retried (fail fast).  ``None`` = unlimited.
    breaker_failure_threshold:
        Consecutive failures that trip the breaker open.
    breaker_recovery_seconds:
        Wall-clock seconds an open breaker waits before admitting one
        half-open probe.
    deadline_seconds:
        Per-query budget of simulated seconds across the whole scatter
        (round trips + timeouts + backoff waits); ``None`` = unlimited.
    serve_stale_on_error:
        Whether a generation-stale cache entry may answer for a source whose
        live query failed (the answer is marked degraded + stale).
    """

    max_attempts: int = 3
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    backoff_seed: int = 17
    retry_budget: Optional[int] = None
    breaker_failure_threshold: int = 5
    breaker_recovery_seconds: float = 30.0
    deadline_seconds: Optional[float] = None
    serve_stale_on_error: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be at least 1")

    def with_deadline(self, seconds: Optional[float]) -> "ResilienceConfig":
        """Copy of this configuration with a per-query deadline set."""
        return replace(self, deadline_seconds=seconds)

    def with_breaker(
        self, failure_threshold: int, recovery_seconds: Optional[float] = None
    ) -> "ResilienceConfig":
        """Copy of this configuration with breaker knobs set."""
        updated = replace(self, breaker_failure_threshold=failure_threshold)
        if recovery_seconds is not None:
            updated = replace(updated, breaker_recovery_seconds=recovery_seconds)
        return updated

    def with_retries(
        self, max_attempts: int, retry_budget: Optional[int] = None
    ) -> "ResilienceConfig":
        """Copy of this configuration with retry knobs set."""
        return replace(self, max_attempts=max_attempts, retry_budget=retry_budget)

    def without_stale_serving(self) -> "ResilienceConfig":
        """Copy of this configuration with stale-on-error serving disabled."""
        return replace(self, serve_stale_on_error=False)


class RetryPolicy:
    """Capped exponential backoff with seeded decorrelated jitter."""

    def __init__(
        self,
        max_attempts: int = 3,
        base_seconds: float = 0.05,
        cap_seconds: float = 2.0,
        seed: int = 17,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.max_attempts = max_attempts
        self.base_seconds = base_seconds
        self.cap_seconds = cap_seconds
        self.seed = seed

    @classmethod
    def from_config(cls, config: ResilienceConfig) -> "RetryPolicy":
        return cls(
            max_attempts=config.max_attempts,
            base_seconds=config.backoff_base_seconds,
            cap_seconds=config.backoff_cap_seconds,
            seed=config.backoff_seed,
        )

    def delays(self, token: int = 0) -> List[float]:
        """The backoff delays between the attempts of one call (length
        ``max_attempts - 1``).  Deterministic per ``(seed, token)``: replaying
        a call sequence replays its waits."""
        rng = random.Random(self.seed * _TOKEN_HASH + token)
        delays: List[float] = []
        previous = self.base_seconds
        for _ in range(self.max_attempts - 1):
            previous = min(self.cap_seconds, rng.uniform(self.base_seconds, previous * 3))
            delays.append(previous)
        return delays


class BreakerState:
    """String constants for the breaker automaton."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed → open → half-open circuit breaker for one source/shard.

    ``clock`` is injectable (tests drive recovery without sleeping).  All
    transitions are recorded so statistics panels can show the breaker's
    history, and :meth:`seconds_until_probe` feeds ``Retry-After`` hints.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.name = name
        self._failure_threshold = failure_threshold
        self._recovery_seconds = recovery_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._transitions: Dict[str, int] = {"opened": 0, "half_opened": 0, "closed": 0}

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    @property
    def is_open(self) -> bool:
        """True while calls would be rejected (open, before the probe window)."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state == BreakerState.OPEN

    def allow(self) -> bool:
        """Whether a call may proceed now.  In half-open state exactly one
        probe is admitted at a time; its success/failure settles the state."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == BreakerState.CLOSED:
                return True
            if self._state == BreakerState.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != BreakerState.CLOSED:
                self._state = BreakerState.CLOSED
                self._transitions["closed"] += 1

    def abandon_probe(self) -> None:
        """Release a half-open probe slot without settling the state (the
        probe died on a non-availability error that says nothing about the
        source being up)."""
        with self._lock:
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            self._consecutive_failures += 1
            if self._state == BreakerState.HALF_OPEN:
                self._open_locked()  # failed probe: back to open, timer restarts
            elif (
                self._state == BreakerState.CLOSED
                and self._consecutive_failures >= self._failure_threshold
            ):
                self._open_locked()

    def seconds_until_probe(self) -> float:
        """Wall-clock seconds until the breaker would admit a probe (0 when
        it is not open)."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state != BreakerState.OPEN:
                return 0.0
            return max(0.0, self._opened_at + self._recovery_seconds - self._clock())

    def transitions(self) -> Dict[str, int]:
        """Cumulative transition counts (``opened``/``half_opened``/``closed``)."""
        with self._lock:
            return dict(self._transitions)

    def describe(self) -> Dict[str, object]:
        with self._lock:
            self._maybe_half_open_locked()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "transitions": dict(self._transitions),
            }

    def _open_locked(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._transitions["opened"] += 1

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == BreakerState.OPEN
            and self._clock() >= self._opened_at + self._recovery_seconds
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_in_flight = False
            self._transitions["half_opened"] += 1


class Deadline:
    """A per-query budget of simulated seconds.

    The scatter loop charges every source round trip, injected timeout, and
    backoff wait against the deadline.  Charging is *conservative-serial*:
    even round trips that overlap in wall clock are summed, so a deadline is
    a deterministic property of the query/fault schedule, never of thread
    scheduling.
    """

    def __init__(self, seconds: Optional[float]) -> None:
        self._limit = seconds
        self._spent = 0.0
        self._lock = threading.Lock()

    @property
    def limit(self) -> Optional[float]:
        return self._limit

    @property
    def spent(self) -> float:
        with self._lock:
            return self._spent

    def charge(self, seconds: float) -> None:
        """Account ``seconds`` of simulated waiting against the deadline."""
        if seconds <= 0:
            return
        with self._lock:
            self._spent += seconds

    def remaining(self) -> float:
        if self._limit is None:
            return float("inf")
        with self._lock:
            return max(0.0, self._limit - self._spent)

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def require(self, context: str) -> None:
        """Raise :class:`DeadlineExceededError` when the budget is spent."""
        if self._limit is not None and self.remaining() <= 0.0:
            raise DeadlineExceededError(
                f"deadline of {self._limit:.3f}s exhausted {context} "
                f"(spent {self.spent:.3f}s)",
                elapsed_seconds=self.spent,
            )


class ResilienceStatistics:
    """Thread-safe counters shared by every guard of one source/reranker."""

    _FIELDS = (
        "attempts",
        "retries",
        "failed_attempts",
        "short_circuits",
        "breaker_opens",
        "breaker_half_opens",
        "breaker_closes",
        "timeouts_paid",
        "deadline_hits",
        "retry_budget_exhausted",
        "degraded_results",
        "stale_serves",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in self._FIELDS}
        self._simulated_wait_seconds = 0.0

    def record(self, field: str, count: int = 1) -> None:
        with self._lock:
            self._counts[field] += count

    def record_wait(self, seconds: float) -> None:
        with self._lock:
            self._simulated_wait_seconds += seconds

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            snapshot: Dict[str, object] = dict(self._counts)
            snapshot["simulated_wait_seconds"] = self._simulated_wait_seconds
            return snapshot


class SourceGuard:
    """One source/shard's retry loop wired through its circuit breaker.

    :meth:`call` is designed to wrap the *remote compute* closure inside a
    result-cache fetch: cache hits never reach the guard (a cached answer
    keeps serving while the breaker is open), and breaker state reflects only
    real round trips.
    """

    def __init__(
        self,
        name: str,
        policy: RetryPolicy,
        breaker: CircuitBreaker,
        statistics: Optional[ResilienceStatistics] = None,
        retry_budget: Optional[int] = None,
    ) -> None:
        self.name = name
        self.policy = policy
        self.breaker = breaker
        self.statistics = statistics or ResilienceStatistics()
        self._retry_budget = retry_budget
        self._retries_spent = 0
        self._calls = 0
        self._lock = threading.Lock()

    @classmethod
    def from_config(
        cls,
        name: str,
        config: ResilienceConfig,
        statistics: Optional[ResilienceStatistics] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "SourceGuard":
        return cls(
            name=name,
            policy=RetryPolicy.from_config(config),
            breaker=CircuitBreaker(
                failure_threshold=config.breaker_failure_threshold,
                recovery_seconds=config.breaker_recovery_seconds,
                clock=clock,
                name=name,
            ),
            statistics=statistics,
            retry_budget=config.retry_budget,
        )

    def call(
        self,
        supply: Callable[[], SearchResult],
        deadline: Optional[Deadline] = None,
    ) -> SearchResult:
        """Run ``supply`` under the guard's breaker + retry policy.

        Raises :class:`CircuitOpenError` without invoking ``supply`` while
        the breaker is open; otherwise retries retryable failures up to the
        policy's attempt count, charging every failed attempt's elapsed time
        and backoff wait to ``deadline``.
        """
        stats = self.statistics
        before = self.breaker.transitions()
        if not self.breaker.allow():
            stats.record("short_circuits")
            raise CircuitOpenError(
                f"{self.name}: circuit open, call rejected without paying the "
                f"source round trip",
                source=self.name,
                retry_after_seconds=self.breaker.seconds_until_probe(),
            )
        with self._lock:
            token = self._calls
            self._calls += 1
        delays = self.policy.delays(token)
        last_error: Optional[SourceUnavailableError] = None
        for attempt in range(self.policy.max_attempts):
            if deadline is not None:
                try:
                    deadline.require(f"before attempt {attempt + 1} on {self.name}")
                except DeadlineExceededError:
                    stats.record("deadline_hits")
                    self._fold_transitions(before)
                    raise
            stats.record("attempts")
            try:
                result = supply()
            except SourceUnavailableError as exc:
                last_error = exc
            except BaseException:
                # A non-availability error (malformed query, crawl error, ...)
                # says nothing about the source being up: release any probe
                # slot and let it propagate without touching breaker state.
                self.breaker.abandon_probe()
                self._fold_transitions(before)
                raise
            else:
                self.breaker.record_success()
                self._fold_transitions(before)
                return result
            stats.record("failed_attempts")
            if last_error.elapsed_seconds:
                stats.record("timeouts_paid")
                stats.record_wait(last_error.elapsed_seconds)
                if deadline is not None:
                    deadline.charge(last_error.elapsed_seconds)
            self.breaker.record_failure()
            if self.breaker.is_open:
                break  # tripping the breaker ends the retry loop
            if attempt >= self.policy.max_attempts - 1:
                break
            if not self._spend_retry():
                stats.record("retry_budget_exhausted")
                break
            wait = delays[attempt]
            stats.record("retries")
            stats.record_wait(wait)
            if deadline is not None:
                deadline.charge(wait)
        self._fold_transitions(before)
        assert last_error is not None
        raise last_error

    def _spend_retry(self) -> bool:
        if self._retry_budget is None:
            return True
        with self._lock:
            if self._retries_spent >= self._retry_budget:
                return False
            self._retries_spent += 1
            return True

    def _fold_transitions(self, before: Dict[str, int]) -> None:
        after = self.breaker.transitions()
        stats = self.statistics
        for key, field in (
            ("opened", "breaker_opens"),
            ("half_opened", "breaker_half_opens"),
            ("closed", "breaker_closes"),
        ):
            delta = after[key] - before[key]
            if delta > 0:
                stats.record(field, delta)

    def describe(self) -> Dict[str, object]:
        with self._lock:
            retries_spent = self._retries_spent
            calls = self._calls
        description = self.breaker.describe()
        description.update({"calls": calls, "retries_spent": retries_spent})
        return description


class ResilientInterface(TopKInterface):
    """Retry/breaker wrapper for a single (unsharded) source.

    Sits *outside* any fault injector so scheduled faults are retried, and
    *inside* the query engine's result cache so cached answers bypass the
    guard entirely.  Transparent for every attribute it does not implement.
    """

    def __init__(
        self,
        inner: TopKInterface,
        config: Optional[ResilienceConfig] = None,
        statistics: Optional[ResilienceStatistics] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._inner = inner
        self._config = config or ResilienceConfig()
        name = getattr(inner, "name", "source")
        self._guard = SourceGuard.from_config(
            name, self._config, statistics=statistics, clock=clock
        )

    @property
    def schema(self):
        return self._inner.schema

    @property
    def system_k(self) -> int:
        return self._inner.system_k

    @property
    def key_column(self) -> str:
        return self._inner.key_column

    @property
    def supports_batched_search(self) -> bool:
        # Each query must pass through the guard individually.
        return False

    def search(self, query: SearchQuery) -> SearchResult:
        deadline = Deadline(self._config.deadline_seconds)
        return self._guard.call(lambda: self._inner.search(query), deadline)

    def search_many(self, queries):
        return [self.search(query) for query in queries]

    def queries_issued(self) -> int:
        return self._inner.queries_issued()

    @property
    def guard(self) -> SourceGuard:
        """The source's guard (breaker + retry accounting)."""
        return self._guard

    @property
    def resilience_statistics(self) -> ResilienceStatistics:
        return self._guard.statistics

    def resilience_snapshot(self) -> Dict[str, object]:
        """Counters plus the single breaker's state, shaped exactly like
        :meth:`~repro.webdb.federation.FederatedInterface.resilience_snapshot`
        so the statistics panel treats both source kinds uniformly."""
        payload = self._guard.statistics.snapshot()
        payload["breakers"] = [self._guard.describe()]
        return payload

    @property
    def inner(self) -> TopKInterface:
        """The wrapped interface."""
        return self._inner

    def __getattr__(self, name: str):
        return getattr(self._inner, name)
