"""Wire format between the reranking service and a web database's search API.

A real deep-web site encodes its search form as URL parameters
(``price_min=1000&price_max=2000&shape=round,oval``); the adapter has to
serialize a :class:`~repro.webdb.query.SearchQuery` into that shape and parse
the result page back into tuples.  This module defines both directions plus
the JSON schema of the search response, so the in-process server, the socket
server, and the client agree on a single format.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Mapping, Tuple

from repro.dataset.schema import AttributeKind, Schema
from repro.exceptions import WireFormatError
from repro.webdb.interface import Outcome, SearchResult
from repro.webdb.query import InPredicate, RangePredicate, SearchQuery

#: Suffixes used to encode a numeric range as two URL parameters.
MIN_SUFFIX = "_min"
MAX_SUFFIX = "_max"
#: Suffixes marking a bound as exclusive (the Get-Next primitive needs strict
#: inequalities, which real forms do not offer; the simulated API does).
EXCLUSIVE_MIN_SUFFIX = "_gt"
EXCLUSIVE_MAX_SUFFIX = "_lt"


def encode_query(query: SearchQuery) -> Dict[str, str]:
    """Encode a query as flat URL parameters."""
    params: Dict[str, str] = {}
    for predicate in query.ranges:
        if math.isfinite(predicate.lower):
            suffix = MIN_SUFFIX if predicate.include_lower else EXCLUSIVE_MIN_SUFFIX
            params[f"{predicate.attribute}{suffix}"] = repr(predicate.lower)
        if math.isfinite(predicate.upper):
            suffix = MAX_SUFFIX if predicate.include_upper else EXCLUSIVE_MAX_SUFFIX
            params[f"{predicate.attribute}{suffix}"] = repr(predicate.upper)
    for predicate in query.memberships:
        params[predicate.attribute] = ",".join(sorted(predicate.values))
    return params


def decode_query(params: Mapping[str, str], schema: Schema) -> SearchQuery:
    """Decode URL parameters back into a :class:`SearchQuery`.

    Unknown parameters raise :class:`WireFormatError` — a third-party service
    must notice immediately when it targets the wrong form fields.
    """
    bounds: Dict[str, Dict[str, Tuple[float, bool]]] = {}
    memberships: List[InPredicate] = []
    for raw_name, raw_value in params.items():
        name, side, inclusive = _split_parameter(raw_name)
        if side is None:
            attribute = schema.attribute(name)
            if attribute.kind is not AttributeKind.CATEGORICAL:
                raise WireFormatError(
                    f"parameter {raw_name!r} targets non-categorical attribute"
                )
            values = [value for value in raw_value.split(",") if value]
            if not values:
                raise WireFormatError(f"parameter {raw_name!r} has no values")
            memberships.append(InPredicate.of(name, values))
            continue
        schema.require_numeric(name)
        try:
            numeric_value = float(raw_value)
        except ValueError as exc:
            raise WireFormatError(
                f"parameter {raw_name!r} has non-numeric value {raw_value!r}"
            ) from exc
        bounds.setdefault(name, {})[side] = (numeric_value, inclusive)

    ranges: List[RangePredicate] = []
    for name, sides in bounds.items():
        lower, include_lower = sides.get("lower", (-math.inf, True))
        upper, include_upper = sides.get("upper", (math.inf, True))
        ranges.append(
            RangePredicate(
                attribute=name,
                lower=lower,
                upper=upper,
                include_lower=include_lower,
                include_upper=include_upper,
            )
        )
    return SearchQuery(tuple(ranges), tuple(memberships))


def _split_parameter(raw_name: str) -> Tuple[str, object, bool]:
    """Split ``price_min`` into ``("price", "lower", inclusive=True)`` etc.

    Returns ``(name, None, True)`` for categorical parameters.
    """
    for suffix, side, inclusive in (
        (MIN_SUFFIX, "lower", True),
        (EXCLUSIVE_MIN_SUFFIX, "lower", False),
        (MAX_SUFFIX, "upper", True),
        (EXCLUSIVE_MAX_SUFFIX, "upper", False),
    ):
        if raw_name.endswith(suffix):
            return raw_name[: -len(suffix)], side, inclusive
    return raw_name, None, True


def encode_result(result: SearchResult, key_column: str) -> Dict[str, object]:
    """Encode a search result as the JSON payload the search API returns."""
    return {
        "outcome": result.outcome.value,
        "system_k": result.system_k,
        "elapsed_seconds": result.elapsed_seconds,
        "key_column": key_column,
        "rows": [dict(row) for row in result.rows],
    }


def decode_result(payload: Mapping[str, object], query: SearchQuery) -> SearchResult:
    """Decode the JSON payload of the search API back into a result."""
    try:
        outcome = Outcome(str(payload["outcome"]))
        system_k = int(payload["system_k"])  # type: ignore[arg-type]
        rows = tuple(dict(row) for row in payload["rows"])  # type: ignore[union-attr]
        elapsed = float(payload.get("elapsed_seconds", 0.0))  # type: ignore[arg-type]
    except (KeyError, ValueError, TypeError) as exc:
        raise WireFormatError(f"malformed search response: {exc}") from exc
    return SearchResult(
        query=query,
        rows=rows,
        outcome=outcome,
        system_k=system_k,
        elapsed_seconds=elapsed,
    )


def encode_schema(schema: Schema) -> Dict[str, object]:
    """Encode a schema so remote clients can discover the search form."""
    attributes = []
    for attribute in schema.attributes:
        entry: Dict[str, object] = {
            "name": attribute.name,
            "kind": attribute.kind.value,
            "rankable": attribute.rankable,
            "description": attribute.description,
        }
        if attribute.is_numeric:
            entry["lower"] = attribute.lower
            entry["upper"] = attribute.upper
        else:
            entry["categories"] = list(attribute.categories)
        attributes.append(entry)
    return {"key": schema.key, "attributes": attributes}


def decode_schema(payload: Mapping[str, object]) -> Schema:
    """Inverse of :func:`encode_schema`."""
    from repro.dataset.schema import Attribute

    try:
        attributes = []
        for entry in payload["attributes"]:  # type: ignore[union-attr]
            kind = AttributeKind(str(entry["kind"]))
            if kind is AttributeKind.NUMERIC:
                attributes.append(
                    Attribute.numeric(
                        str(entry["name"]),
                        float(entry["lower"]),
                        float(entry["upper"]),
                        rankable=bool(entry.get("rankable", True)),
                        description=str(entry.get("description", "")),
                    )
                )
            else:
                attributes.append(
                    Attribute.categorical(
                        str(entry["name"]),
                        [str(v) for v in entry["categories"]],
                        description=str(entry.get("description", "")),
                    )
                )
        return Schema(attributes=tuple(attributes), key=str(payload["key"]))
    except (KeyError, ValueError, TypeError) as exc:
        raise WireFormatError(f"malformed schema payload: {exc}") from exc


def dumps(payload: object) -> str:
    """JSON-encode a payload with stable key order."""
    return json.dumps(payload, sort_keys=True)
