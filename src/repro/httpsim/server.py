"""Search API servers for simulated web databases.

Two deployments are supported:

* :class:`SearchHttpServer` — an in-process application object that maps
  :class:`~repro.httpsim.messages.HttpRequest` to
  :class:`~repro.httpsim.messages.HttpResponse`.  The unit tests and the
  default benchmark setup use this: the full request/serialize/parse path is
  exercised without opening sockets.
* :func:`serve_database_over_socket` — the same application served over a real
  TCP socket using the standard library's ``http.server``, so the examples can
  demonstrate a genuinely remote web database.

The exposed routes mirror what a deep-web search form provides:

========  =====================  ==========================================
method    path                   meaning
========  =====================  ==========================================
GET       /api/schema            advertise the search form (schema)
GET       /api/search?...        top-k search with URL-encoded predicates
GET       /api/meta              database name, size, and system-k
========  =====================  ==========================================
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from repro.exceptions import QueryError, SchemaError, WireFormatError
from repro.httpsim import wire
from repro.httpsim.messages import HttpRequest, HttpResponse
from repro.webdb.database import HiddenWebDatabase


class SearchHttpServer:
    """In-process HTTP application exposing one hidden web database."""

    def __init__(self, database: HiddenWebDatabase) -> None:
        self._database = database
        self._routes: Dict[Tuple[str, str], Callable[[HttpRequest], HttpResponse]] = {
            ("GET", "/api/schema"): self._handle_schema,
            ("GET", "/api/search"): self._handle_search,
            ("GET", "/api/meta"): self._handle_meta,
        }

    @property
    def database(self) -> HiddenWebDatabase:
        """The database served by this application."""
        return self._database

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Dispatch one request to its route handler."""
        handler = self._routes.get((request.method, request.path))
        if handler is None:
            return HttpResponse.error(404, f"no route for {request.method} {request.path}")
        try:
            return handler(request)
        except (QueryError, SchemaError, WireFormatError) as exc:
            return HttpResponse.error(400, str(exc))

    # ------------------------------------------------------------------ #
    # Route handlers
    # ------------------------------------------------------------------ #
    def _handle_schema(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json_response(wire.encode_schema(self._database.schema))

    def _handle_meta(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json_response(
            {
                "name": self._database.name,
                "size": self._database.size,
                "system_k": self._database.system_k,
                "queries_served": self._database.queries_issued(),
            }
        )

    def _handle_search(self, request: HttpRequest) -> HttpResponse:
        query = wire.decode_query(request.query_params, self._database.schema)
        result = self._database.search(query)
        return HttpResponse.json_response(
            wire.encode_result(result, self._database.key_column)
        )


class _SocketHandler(BaseHTTPRequestHandler):
    """Adapts ``http.server`` requests to the in-process application."""

    application: SearchHttpServer  # set by serve_database_over_socket

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        request = HttpRequest.from_url("GET", self.path)
        response = self.application.handle(request)
        body = response.body.encode("utf-8")
        self.send_response(response.status)
        for key, value in response.headers.items():
            self.send_header(key, value)
        self.send_header("content-length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request logging (the examples print their own stats)."""


class SocketServerHandle:
    """Handle over a background socket server (host, port, and shutdown)."""

    def __init__(self, server: ThreadingHTTPServer, thread: threading.Thread) -> None:
        self._server = server
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` the server is bound to."""
        return self._server.server_address  # type: ignore[return-value]

    @property
    def base_url(self) -> str:
        """Base URL of the server."""
        host, port = self.address
        return f"http://{host}:{port}"

    def shutdown(self) -> None:
        """Stop the server and join its thread."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


def serve_database_over_socket(
    database: HiddenWebDatabase,
    host: str = "127.0.0.1",
    port: int = 0,
) -> SocketServerHandle:
    """Serve a hidden web database over a real TCP socket in a daemon thread.

    ``port=0`` binds an ephemeral port; the chosen port is available from the
    returned handle.  The caller is responsible for calling ``shutdown()``.
    """
    application = SearchHttpServer(database)
    handler_class = type(
        "BoundSocketHandler", (_SocketHandler,), {"application": application}
    )
    server = ThreadingHTTPServer((host, port), handler_class)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return SocketServerHandle(server, thread)
