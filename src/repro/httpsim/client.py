"""HTTP client used by the reranking service to reach a web database.

The client mirrors the small part of the ``requests`` API the original system
uses (``get`` with params, JSON decoding, retries on transient failures) and is
parameterized by a *transport* so the same client code can talk to

* an in-process :class:`~repro.httpsim.server.SearchHttpServer`
  (:class:`InProcessTransport`, used by tests and benchmarks), or
* a real socket server started with
  :func:`~repro.httpsim.server.serve_database_over_socket`
  (:class:`UrllibTransport`, used by the networked example).
"""

from __future__ import annotations

import time
import urllib.error
import urllib.request
from abc import ABC, abstractmethod
from typing import Mapping, Optional
from urllib.parse import urlencode

from repro.exceptions import RemoteInterfaceError
from repro.httpsim.messages import HttpRequest, HttpResponse


class Transport(ABC):
    """Delivers a request to a server and returns its response."""

    @abstractmethod
    def send(self, request: HttpRequest) -> HttpResponse:
        """Deliver ``request`` and return the response."""


class InProcessTransport(Transport):
    """Transport that calls an in-process application object directly."""

    def __init__(self, application) -> None:
        self._application = application

    def send(self, request: HttpRequest) -> HttpResponse:
        return self._application.handle(request)


class UrllibTransport(Transport):
    """Transport that performs real HTTP requests with ``urllib``."""

    def __init__(self, base_url: str, timeout_seconds: float = 10.0) -> None:
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout_seconds

    def send(self, request: HttpRequest) -> HttpResponse:
        if request.method != "GET":
            raise RemoteInterfaceError(
                f"UrllibTransport only supports GET, got {request.method}"
            )
        url = self._base_url + request.path
        if request.query_params:
            url = f"{url}?{urlencode(dict(request.query_params))}"
        try:
            with urllib.request.urlopen(url, timeout=self._timeout) as raw:
                body = raw.read().decode("utf-8")
                headers = {key.lower(): value for key, value in raw.headers.items()}
                return HttpResponse(status=raw.status, headers=headers, body=body)
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8") if exc.fp is not None else ""
            return HttpResponse(status=exc.code, headers={}, body=body)
        except urllib.error.URLError as exc:
            raise RemoteInterfaceError(f"could not reach {url}: {exc.reason}") from exc


class HttpClient:
    """Small ``requests``-like client with retries for transient failures."""

    def __init__(
        self,
        transport: Transport,
        max_retries: int = 2,
        backoff_seconds: float = 0.0,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._transport = transport
        self._max_retries = max_retries
        self._backoff = backoff_seconds
        self.requests_sent = 0

    def get(self, path: str, params: Optional[Mapping[str, str]] = None) -> HttpResponse:
        """Send a GET request, retrying transient (5xx / transport) failures."""
        request = HttpRequest.get(path, params)
        return self._send_with_retries(request)

    def get_json(self, path: str, params: Optional[Mapping[str, str]] = None) -> object:
        """GET and decode a JSON response, raising on non-2xx statuses."""
        response = self.get(path, params)
        if not response.ok:
            raise RemoteInterfaceError(
                f"GET {path} failed with status {response.status}: {response.body[:200]}"
            )
        return response.json()

    def _send_with_retries(self, request: HttpRequest) -> HttpResponse:
        last_error: Optional[Exception] = None
        for attempt in range(self._max_retries + 1):
            try:
                self.requests_sent += 1
                response = self._transport.send(request)
            except RemoteInterfaceError as exc:
                last_error = exc
            else:
                if response.status < 500:
                    return response
                last_error = RemoteInterfaceError(
                    f"server error {response.status} for {request.url}"
                )
            if attempt < self._max_retries and self._backoff > 0:
                time.sleep(self._backoff * (attempt + 1))
        assert last_error is not None
        raise last_error
