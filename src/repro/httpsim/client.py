"""HTTP client used by the reranking service to reach a web database.

The client mirrors the small part of the ``requests`` API the original system
uses (``get`` with params, JSON decoding, retries on transient failures) and is
parameterized by a *transport* so the same client code can talk to

* an in-process :class:`~repro.httpsim.server.SearchHttpServer`
  (:class:`InProcessTransport`, used by tests and benchmarks), or
* a real socket server started with
  :func:`~repro.httpsim.server.serve_database_over_socket`
  (:class:`UrllibTransport`, used by the networked example).
"""

from __future__ import annotations

import time
import urllib.error
import urllib.request
from abc import ABC, abstractmethod
from typing import Callable, Mapping, Optional
from urllib.parse import urlencode

from repro.exceptions import RemoteInterfaceError
from repro.httpsim.messages import HttpRequest, HttpResponse
from repro.webdb.resilience import RetryPolicy


class Transport(ABC):
    """Delivers a request to a server and returns its response."""

    @abstractmethod
    def send(self, request: HttpRequest) -> HttpResponse:
        """Deliver ``request`` and return the response."""


class InProcessTransport(Transport):
    """Transport that calls an in-process application object directly."""

    def __init__(self, application) -> None:
        self._application = application

    def send(self, request: HttpRequest) -> HttpResponse:
        return self._application.handle(request)


class UrllibTransport(Transport):
    """Transport that performs real HTTP requests with ``urllib``."""

    def __init__(self, base_url: str, timeout_seconds: float = 10.0) -> None:
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout_seconds

    def send(self, request: HttpRequest) -> HttpResponse:
        if request.method != "GET":
            raise RemoteInterfaceError(
                f"UrllibTransport only supports GET, got {request.method}"
            )
        url = self._base_url + request.path
        if request.query_params:
            url = f"{url}?{urlencode(dict(request.query_params))}"
        try:
            with urllib.request.urlopen(url, timeout=self._timeout) as raw:
                body = raw.read().decode("utf-8")
                headers = {key.lower(): value for key, value in raw.headers.items()}
                return HttpResponse(status=raw.status, headers=headers, body=body)
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8") if exc.fp is not None else ""
            return HttpResponse(status=exc.code, headers={}, body=body)
        except urllib.error.URLError as exc:
            raise RemoteInterfaceError(f"could not reach {url}: {exc.reason}") from exc


class HttpClient:
    """Small ``requests``-like client with retries for transient failures.

    Retryable outcomes are transport errors, 5xx statuses, and 429s.  The
    waits between attempts come from a seeded
    :class:`~repro.webdb.resilience.RetryPolicy` (capped exponential backoff
    with decorrelated jitter), so a replayed call sequence replays its delay
    sequence byte for byte; a 429 carrying ``Retry-After`` overrides the
    jittered delay with the server's own hint.  ``sleeper`` is injectable so
    tests and simulations observe the chosen delays without sleeping.
    """

    def __init__(
        self,
        transport: Transport,
        max_retries: int = 2,
        backoff_seconds: float = 0.0,
        backoff_cap_seconds: float = 2.0,
        backoff_seed: int = 17,
        sleeper: Optional[Callable[[float], None]] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._transport = transport
        self._max_retries = max_retries
        self._policy = RetryPolicy(
            max_attempts=max_retries + 1,
            base_seconds=backoff_seconds,
            cap_seconds=backoff_cap_seconds,
            seed=backoff_seed,
        )
        self._sleeper = sleeper if sleeper is not None else time.sleep
        self.requests_sent = 0
        self.retries = 0
        self.rate_limited = 0
        self.backoff_waited_seconds = 0.0
        self._calls = 0

    def get(self, path: str, params: Optional[Mapping[str, str]] = None) -> HttpResponse:
        """Send a GET request, retrying transient (5xx / 429 / transport)
        failures."""
        request = HttpRequest.get(path, params)
        return self._send_with_retries(request)

    def get_json(self, path: str, params: Optional[Mapping[str, str]] = None) -> object:
        """GET and decode a JSON response, raising on non-2xx statuses."""
        response = self.get(path, params)
        if not response.ok:
            raise RemoteInterfaceError(
                f"GET {path} failed with status {response.status}: {response.body[:200]}"
            )
        return response.json()

    def _send_with_retries(self, request: HttpRequest) -> HttpResponse:
        token = self._calls
        self._calls += 1
        delays = self._policy.delays(token)
        last_error: Optional[Exception] = None
        last_response: Optional[HttpResponse] = None
        for attempt in range(self._max_retries + 1):
            retry_after: Optional[float] = None
            try:
                self.requests_sent += 1
                response = self._transport.send(request)
            except RemoteInterfaceError as exc:
                last_error, last_response = exc, None
            else:
                if response.status == 429:
                    # Rate limited: the server told us to go away for a bit.
                    self.rate_limited += 1
                    retry_after = response.retry_after_seconds()
                    last_error, last_response = None, response
                elif response.status < 500:
                    return response
                else:
                    last_error = RemoteInterfaceError(
                        f"server error {response.status} for {request.url}"
                    )
                    last_response = None
            if attempt >= self._max_retries:
                break
            self.retries += 1
            wait = delays[attempt] if attempt < len(delays) else 0.0
            if retry_after is not None and retry_after > 0:
                wait = retry_after
            if wait > 0:
                self.backoff_waited_seconds += wait
                self._sleeper(wait)
        if last_response is not None:
            # Retries exhausted while rate limited: surface the last 429 —
            # the caller sees the status instead of a masked exception.
            return last_response
        assert last_error is not None
        raise last_error
