"""A miniature HTTP stack used to access simulated web databases the way the
real QR2 accesses Blue Nile and Zillow: by issuing HTTP requests against a
public search endpoint and parsing the response."""

from repro.httpsim.messages import HttpRequest, HttpResponse
from repro.httpsim.client import HttpClient, InProcessTransport
from repro.httpsim.server import SearchHttpServer, serve_database_over_socket

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "HttpClient",
    "InProcessTransport",
    "SearchHttpServer",
    "serve_database_over_socket",
]
