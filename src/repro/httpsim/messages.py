"""HTTP request/response value objects.

The real system uses the ``requests`` library; here a pair of small frozen
dataclasses models the parts of HTTP the search traffic actually uses: method,
path, query string, JSON bodies, status codes, and headers.  Keeping them as
plain values makes the in-process transport, the socket transport, and the
tests share one representation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional
from urllib.parse import parse_qsl, urlencode

from repro.exceptions import WireFormatError


@dataclass(frozen=True)
class HttpRequest:
    """One HTTP request."""

    method: str
    path: str
    query_params: Mapping[str, str] = field(default_factory=dict)
    headers: Mapping[str, str] = field(default_factory=dict)
    body: Optional[str] = None

    def __post_init__(self) -> None:
        if self.method not in ("GET", "POST", "PUT", "DELETE"):
            raise WireFormatError(f"unsupported HTTP method {self.method!r}")
        if not self.path.startswith("/"):
            raise WireFormatError(f"path must start with '/': {self.path!r}")

    @property
    def url(self) -> str:
        """Path plus encoded query string."""
        if not self.query_params:
            return self.path
        return f"{self.path}?{urlencode(dict(self.query_params))}"

    def json(self) -> object:
        """Decode the body as JSON."""
        if self.body is None:
            raise WireFormatError("request has no body")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise WireFormatError(f"invalid JSON body: {exc}") from exc

    @staticmethod
    def get(path: str, params: Optional[Mapping[str, str]] = None) -> "HttpRequest":
        """Convenience constructor for a GET request."""
        return HttpRequest(method="GET", path=path, query_params=dict(params or {}))

    @staticmethod
    def post_json(path: str, payload: object) -> "HttpRequest":
        """Convenience constructor for a POST request with a JSON body."""
        return HttpRequest(
            method="POST",
            path=path,
            headers={"content-type": "application/json"},
            body=json.dumps(payload),
        )

    @staticmethod
    def from_url(method: str, url: str) -> "HttpRequest":
        """Parse ``/path?a=1&b=2`` into a request."""
        if "?" in url:
            path, _, query = url.partition("?")
            params = dict(parse_qsl(query, keep_blank_values=True))
        else:
            path, params = url, {}
        return HttpRequest(method=method, path=path, query_params=params)


@dataclass(frozen=True)
class HttpResponse:
    """One HTTP response."""

    status: int
    headers: Mapping[str, str] = field(default_factory=dict)
    body: str = ""

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300

    def json(self) -> object:
        """Decode the body as JSON."""
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise WireFormatError(f"invalid JSON response body: {exc}") from exc

    @staticmethod
    def json_response(
        payload: object,
        status: int = 200,
        headers: Optional[Mapping[str, str]] = None,
    ) -> "HttpResponse":
        """Build a JSON response; extra ``headers`` win over the default
        content type (the 429/503 paths attach ``Retry-After`` this way)."""
        return HttpResponse(
            status=status,
            headers=merge_headers({"content-type": "application/json"}, headers or {}),
            body=json.dumps(payload),
        )

    def retry_after_seconds(self) -> Optional[float]:
        """Parsed ``Retry-After`` header (seconds form), or ``None``."""
        for key, value in self.headers.items():
            if key.lower() == "retry-after":
                try:
                    return float(value)
                except ValueError:
                    return None
        return None

    @staticmethod
    def error(status: int, message: str) -> "HttpResponse":
        """Build a JSON error response."""
        return HttpResponse.json_response({"error": message}, status=status)


def merge_headers(*parts: Mapping[str, str]) -> Dict[str, str]:
    """Merge header dictionaries, later parts winning, keys lower-cased."""
    merged: Dict[str, str] = {}
    for part in parts:
        for key, value in part.items():
            merged[key.lower()] = value
    return merged
