"""Benchmark harness regenerating every figure and demonstration scenario of
the paper (see the experiment index in ``DESIGN.md``)."""
