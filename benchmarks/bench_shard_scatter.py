"""SC-SHARD — federated sharding: scatter-gather Get-Next and byte-identity.

PR 6 partitions a source's catalog across N per-shard hidden web databases
behind a :class:`~repro.webdb.federation.FederatedInterface`.  The federation
must be *invisible* to the reranking layer: the same query against the same
logical catalog has to produce the same pages in the same emission order as
the unsharded reference engine, whichever way the catalog is partitioned and
whichever federation mode executes it.  This bench enforces that:

* **SCATTER** — representative 1D and MD workloads per source run against
  federations of 2 and 4 shards (hidden-rank round-robin and ``price``-range
  partitions) in both federation modes.  Pages must be byte-identical to the
  unsharded reference; scatter mode must stay within the 1.5x external-query
  budget (it is exactly 1.0x — the unmodified algorithms cannot see the shard
  layer); merge mode's per-shard descent overhead is reported.  A pruning
  probe (attribute sharding + a filter inside one partition) must skip
  non-intersecting shards and still match the reference byte for byte.
* **DIFFERENTIAL** — a randomized sweep over sources, shard counts,
  partitioning schemes, filters, rankings (1D and MD), and algorithms
  (BINARY/RERANK/TA): every page of every trial must be byte-identical across
  unsharded / scatter / merge, and scatter must hold the query budget.

The correctness gates (byte-identical pages, query budget) always run;
``--bench-quick`` shrinks the workload for CI.
"""

from __future__ import annotations

import pytest

from benchmarks._tables import print_table
from repro.workloads.experiments import run_shard_differential, run_shard_scatter

SHARD_COUNTS = (2, 4)
DEPTH = 10
QUERY_BUDGET = 1.5


@pytest.mark.benchmark(group="shard-scatter")
def test_shard_scatter_byte_identical(benchmark, environment, bench_quick):
    """Federated scatter-gather must reproduce the unsharded engine byte for
    byte at <= 1.5x the external queries (scatter mode is exactly 1.0x)."""
    shard_counts = (2,) if bench_quick else SHARD_COUNTS

    def run():
        return run_shard_scatter(environment, shard_counts=shard_counts, depth=DEPTH)

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    for source, data in payload.items():
        for label, workload in data["workloads"].items():
            rows = [
                f"{'shards':>7s} {'by':>6s} {'mode':>8s} {'queries':>8s} "
                f"{'ratio':>6s} {'fanout':>7s} {'match':>6s}"
            ]
            for run_info in workload["runs"]:
                rows.append(
                    f"{run_info['shards']:>7d} {run_info['by']:>6s} "
                    f"{run_info['mode']:>8s} {run_info['external_queries']:>8d} "
                    f"{run_info['query_ratio']:>6.2f} "
                    f"{run_info['fan_out']['total']:>7d} "
                    f"{str(run_info['pages_match']):>6s}"
                )
            rows.append(
                f"{'(ref)':>7s} {'-':>6s} {'-':>8s} "
                f"{workload['reference_queries']:>8d} {1.0:>6.2f}"
            )
            print_table(
                f"SC-SHARD [{source} / {label}] — federated vs unsharded",
                "external queries per run, identical workload",
                rows,
            )
            benchmark.extra_info.update(
                {
                    f"{source}_{label}_reference_queries": workload["reference_queries"],
                    f"{source}_{label}_max_scatter_ratio": workload["max_scatter_ratio"],
                    f"{source}_{label}_max_merge_ratio": round(
                        workload["max_merge_ratio"], 2
                    ),
                }
            )
            # Correctness gates: always enforced.
            assert workload["all_pages_match"], (
                f"{source}/{label}: federated pages diverged from unsharded "
                f"reference: {workload['runs']}"
            )
            assert workload["max_scatter_ratio"] <= QUERY_BUDGET, (
                f"{source}/{label}: scatter mode exceeded the "
                f"{QUERY_BUDGET}x external-query budget "
                f"({workload['max_scatter_ratio']:.2f}x)"
            )
        probe = data["pruning_probe"]
        benchmark.extra_info.update(
            {
                f"{source}_pruned_shard_queries": probe["pruned_shard_queries"],
            }
        )
        assert probe["pages_match"], f"{source}: pruning probe diverged"
        assert probe["pruned_shard_queries"] > 0, (
            f"{source}: attribute sharding pruned no shard queries"
        )


@pytest.mark.benchmark(group="shard-scatter")
def test_shard_randomized_differential(benchmark, environment, bench_quick):
    """Randomized (source, shards, partitioning, filter, ranking, algorithm)
    trials: unsharded / scatter / merge pages must be byte-identical and
    scatter must hold the external-query budget."""
    trials = 4 if bench_quick else 8

    def run():
        return run_shard_differential(environment, trials=trials, pages=2, page_size=5)

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for trial in payload["trials"]:
        rows.append(
            f"{trial['trial']:>4d} {trial['source']:>9s} N={trial['shards']} "
            f"{trial['by']:>6s} {trial['algorithm']:>7s} "
            f"ref={trial['reference_queries']:>4d} "
            f"scatter={trial['scatter_queries']:>4d} "
            f"merge={trial['merge_queries']:>4d} "
            f"match={trial['pages_match']}"
        )
    print_table(
        "SC-SHARD-DIFF — randomized sharded/unsharded differential",
        f"{trials} random (source, shards, partition, filter, ranking) trials",
        rows,
    )
    benchmark.extra_info.update(
        {
            "trials": trials,
            "all_match": payload["all_match"],
            "max_scatter_ratio": payload["max_scatter_ratio"],
            "max_merge_ratio": round(payload["max_merge_ratio"], 2),
        }
    )
    for trial in payload["trials"]:
        assert trial["pages_match"], f"trial {trial['trial']} diverged: {trial}"
        assert trial["scatter_ratio"] <= payload["budget"], (
            f"trial {trial['trial']} broke the query budget: {trial}"
        )
    assert payload["all_match"]
    assert payload["scatter_within_budget"]
