"""SC-CACHE — multi-session savings from the shared query-result cache.

The paper's headline metric is the number of external queries a reranked
request costs; popular slider presets make many sessions issue near-identical
query sequences.  This bench serves the same workload to several sessions on
the diamonds and housing sources with the shared result cache on and off:

* **BINARY** (stateless, no dense-region index) shows the cross-session
  redundancy directly — every uncached session re-probes the same intervals —
  and must save at least 30 % of total external queries;
* **RERANK** shows the cache's *marginal* win on top of the shared
  dense-region index (reported, and must never lose);
* **CONTAINMENT** serves nested (progressively narrower) session filters —
  where exact-match caching barely helps because no two sessions repeat a
  query verbatim — and must show *additional* savings from answering subset
  queries out of stored covering superset entries;
* **WARM RESTART** snapshots a service's shared result cache to SQLite,
  reboots, and must replay the prior session's workload with zero external
  round trips.

In every case the reranked output order must be identical across modes: the
cache replays (or derives, for containment) exact query answers, it never
changes them.
"""

from __future__ import annotations

import os

import pytest

from benchmarks._tables import print_table
from repro.config import ServiceConfig
from repro.core.reranker import Algorithm
from repro.service.app import QR2Service
from repro.workloads.experiments import run_cache_reuse, run_containment_reuse

SESSIONS = 4
MIN_SAVINGS = 0.30


def _report(benchmark, payload, require_min_savings: bool) -> None:
    for source, data in payload.items():
        algorithm = data["algorithm"]
        benchmark.extra_info.update(
            {
                f"{source}_{algorithm}_cached_costs": data["cached_costs"],
                f"{source}_{algorithm}_uncached_costs": data["uncached_costs"],
                f"{source}_{algorithm}_savings": round(data["savings_fraction"], 3),
            }
        )
        rows = [
            f"{'session':>12s} " + " ".join(f"{i + 1:>7d}" for i in range(SESSIONS)),
            f"{'cached':>12s} " + " ".join(f"{c:>7d}" for c in data["cached_costs"]),
            f"{'uncached':>12s} " + " ".join(f"{c:>7d}" for c in data["uncached_costs"]),
        ]
        print_table(
            f"SC-CACHE [{source} / {algorithm}] — {data['scenario']}",
            "queries issued to the web database per session "
            f"(savings {data['savings_fraction']:.0%})",
            rows,
        )
        assert data["orders_match"]
        assert data["cached_total"] <= data["uncached_total"]
        if require_min_savings:
            assert data["savings_fraction"] >= MIN_SAVINGS


@pytest.mark.benchmark(group="cache-reuse")
def test_cache_reuse_multi_session_savings(benchmark, environment, depth):
    """>= 30 % fewer external queries across repeated BINARY sessions."""

    def run():
        return run_cache_reuse(
            environment, sessions=SESSIONS, depth=depth, algorithm=Algorithm.BINARY
        )

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(benchmark, payload, require_min_savings=True)


@pytest.mark.benchmark(group="cache-reuse")
def test_cache_reuse_marginal_win_over_dense_index(benchmark, environment, depth):
    """The cache must never lose on RERANK, whose dense index already
    amortizes repeat crawls across sessions."""

    def run():
        return run_cache_reuse(
            environment, sessions=SESSIONS, depth=depth, algorithm=Algorithm.RERANK
        )

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(benchmark, payload, require_min_savings=False)


@pytest.mark.benchmark(group="cache-reuse")
def test_containment_additional_savings(benchmark, environment, depth):
    """Containment answering must save external queries *on top of* the
    exact-match cache when sessions issue nested (subset) filters, with
    byte-identical reranked output."""

    def run():
        return run_containment_reuse(environment, sessions=SESSIONS, depth=depth)

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    for source, data in payload.items():
        benchmark.extra_info.update(
            {
                f"{source}_containment_costs": data["containment_costs"],
                f"{source}_exact_costs": data["exact_costs"],
                f"{source}_additional_savings": round(
                    data["additional_savings_fraction"], 3
                ),
            }
        )
        rows = [
            f"{'session':>12s} " + " ".join(f"{i + 1:>7d}" for i in range(SESSIONS)),
            f"{'containment':>12s} "
            + " ".join(f"{c:>7d}" for c in data["containment_costs"]),
            f"{'exact-only':>12s} " + " ".join(f"{c:>7d}" for c in data["exact_costs"]),
            f"{'contained':>12s} "
            + " ".join(f"{c:>7d}" for c in data["contained_answers"]),
        ]
        print_table(
            f"SC-CONTAIN [{source} / {data['algorithm']}] — {data['scenario']}",
            "queries issued per session, nested filters on "
            f"{data['filter_attribute']} "
            f"(additional savings {data['additional_savings_fraction']:.0%})",
            rows,
        )
        assert data["orders_match"]
        # "Measurable" means strictly fewer round trips, not just no worse.
        assert data["containment_total"] < data["exact_total"]


@pytest.mark.benchmark(group="cache-reuse")
def test_warm_restart_replays_prior_workload_for_free(benchmark, tmp_path):
    """A service restarted from its SQLite result-cache spill must replay the
    previous process's queries with zero external round trips and identical
    pages."""
    path = os.fspath(tmp_path / "results.sqlite")
    config = ServiceConfig(result_cache_path=path)
    filters = {"ranges": {"carat": [0.5, 1.5]}}
    sliders = {"price": -1.0}

    cold = QR2Service(config=config)
    session = cold.create_session()
    cold_response = cold.submit_query(
        session, "bluenile", filters=filters, sliders=sliders, algorithm="binary"
    )
    cold_queries = cold_response["statistics"]["external_queries"]
    cold.close()  # snapshots the shared result cache on the way out

    def run():
        warm = QR2Service(config=config)
        session = warm.create_session()
        response = warm.submit_query(
            session, "bluenile", filters=filters, sliders=sliders, algorithm="binary"
        )
        warm.close()
        return warm.warm_loaded_entries, response

    warm_loaded, warm_response = benchmark.pedantic(run, rounds=1, iterations=1)
    statistics = warm_response["statistics"]
    benchmark.extra_info.update(
        {
            "cold_external_queries": cold_queries,
            "warm_external_queries": statistics["external_queries"],
            "warm_loaded_entries": warm_loaded,
        }
    )
    print_table(
        "SC-WARM [bluenile / binary] — SQLite warm start",
        f"cold paid {cold_queries} external queries; the restarted service "
        f"loaded {warm_loaded} entries",
        [
            f"{'cold':>12s} {cold_queries:>7d}",
            f"{'warm':>12s} {statistics['external_queries']:>7d}",
        ],
    )
    assert cold_queries > 0
    assert warm_loaded > 0
    assert statistics["external_queries"] == 0
    assert warm_response["rows"] == cold_response["rows"]
