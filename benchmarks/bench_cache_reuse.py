"""SC-CACHE — multi-session savings from the shared query-result cache.

The paper's headline metric is the number of external queries a reranked
request costs; popular slider presets make many sessions issue near-identical
query sequences.  This bench serves the same workload to several sessions on
the diamonds and housing sources with the shared result cache on and off:

* **BINARY** (stateless, no dense-region index) shows the cross-session
  redundancy directly — every uncached session re-probes the same intervals —
  and must save at least 30 % of total external queries;
* **RERANK** shows the cache's *marginal* win on top of the shared
  dense-region index (reported, and must never lose).

In both cases the reranked output order must be identical with and without
the cache: the cache replays exact query answers, it never changes them.
"""

from __future__ import annotations

import pytest

from benchmarks._tables import print_table
from repro.core.reranker import Algorithm
from repro.workloads.experiments import run_cache_reuse

SESSIONS = 4
MIN_SAVINGS = 0.30


def _report(benchmark, payload, require_min_savings: bool) -> None:
    for source, data in payload.items():
        algorithm = data["algorithm"]
        benchmark.extra_info.update(
            {
                f"{source}_{algorithm}_cached_costs": data["cached_costs"],
                f"{source}_{algorithm}_uncached_costs": data["uncached_costs"],
                f"{source}_{algorithm}_savings": round(data["savings_fraction"], 3),
            }
        )
        rows = [
            f"{'session':>12s} " + " ".join(f"{i + 1:>7d}" for i in range(SESSIONS)),
            f"{'cached':>12s} " + " ".join(f"{c:>7d}" for c in data["cached_costs"]),
            f"{'uncached':>12s} " + " ".join(f"{c:>7d}" for c in data["uncached_costs"]),
        ]
        print_table(
            f"SC-CACHE [{source} / {algorithm}] — {data['scenario']}",
            "queries issued to the web database per session "
            f"(savings {data['savings_fraction']:.0%})",
            rows,
        )
        assert data["orders_match"]
        assert data["cached_total"] <= data["uncached_total"]
        if require_min_savings:
            assert data["savings_fraction"] >= MIN_SAVINGS


@pytest.mark.benchmark(group="cache-reuse")
def test_cache_reuse_multi_session_savings(benchmark, environment, depth):
    """>= 30 % fewer external queries across repeated BINARY sessions."""

    def run():
        return run_cache_reuse(
            environment, sessions=SESSIONS, depth=depth, algorithm=Algorithm.BINARY
        )

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(benchmark, payload, require_min_savings=True)


@pytest.mark.benchmark(group="cache-reuse")
def test_cache_reuse_marginal_win_over_dense_index(benchmark, environment, depth):
    """The cache must never lose on RERANK, whose dense index already
    amortizes repeat crawls across sessions."""

    def run():
        return run_cache_reuse(
            environment, sessions=SESSIONS, depth=depth, algorithm=Algorithm.RERANK
        )

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(benchmark, payload, require_min_savings=False)
