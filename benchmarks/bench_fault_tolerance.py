"""FT-CHAOS — fault-injected federations: degrade, contain, heal, replay.

PR 10 adds deterministic fault injection (:mod:`repro.webdb.faults`) and a
resilience layer (:mod:`repro.webdb.resilience`) to the federated sources.
This bench drives one sharded source through a scripted chaos schedule and
gates the robustness claims:

* **TRANSIENT** — ~20% of shard round trips fail transiently under a full
  reranking workload; seeded retries must ride over every one of them
  (>= 99% of requests complete, zero degraded pages, ``retries > 0``).
* **OUTAGE** — one shard turns into a permanent 2.5s-timeout zone while a
  scatter workload keeps arriving.  Every request must complete as a
  *degraded* partial answer naming the missing shard, and the shard's
  circuit breaker must open and short-circuit further calls, bounding the
  simulated timeout cost actually paid (the pool never re-pays the dead
  shard per query).
* **HEAL** — faults deactivate and the breaker's recovery window elapses; the
  half-open probe must close the breaker, and a fresh replay of the same
  reranking workload must be **byte-identical** to a never-faulted
  federation of the same catalog.
* **REPLAY** — the chaos run is a pure function of the fault-plan seed:
  rebuilding the federation and replaying the scatter workload must
  reproduce the exact per-shard schedule positions, fault counts, and
  per-query degradation profile.

All gates are deterministic-counter gates (no wall-clock assertions), so they
run identically under ``--bench-quick``.
"""

from __future__ import annotations

import pytest

from benchmarks._tables import print_table
from repro.config import RerankConfig
from repro.core.reranker import QueryReranker
from repro.webdb.faults import FaultPlan
from repro.webdb.federation import build_federation
from repro.webdb.query import SearchQuery
from repro.webdb.resilience import BreakerState, ResilienceConfig
from repro.workloads.scenarios import bluenile_scenarios_1d

SHARDS = 3
DEPTH = 10
SCATTER_QUERIES = 40
TRANSIENT_RATE = 0.2
TIMEOUT_SECONDS = 2.5
RECOVERY_SECONDS = 30.0
CHAOS_PLAN = FaultPlan(seed=2018, transient_rate=TRANSIENT_RATE)
OUTAGE_PLAN = FaultPlan(seed=2018, timeout_rate=1.0, timeout_seconds=TIMEOUT_SECONDS)
# Threshold 10: at a 20% transient rate the probability of ten consecutive
# chance failures is ~1e-7 per sequence, so over the bench's thousands of
# guard calls only the genuinely dead shard trips its breaker.
RESILIENCE = ResilienceConfig(
    max_attempts=5,
    breaker_failure_threshold=10,
    breaker_recovery_seconds=RECOVERY_SECONDS,
)


class ManualClock:
    """Breaker recovery clock the harness advances explicitly."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _make_federation(environment, fault_plan=None):
    return build_federation(
        catalog=environment.diamond_catalog,
        schema=environment.diamond_schema,
        system_ranking=environment.diamond_ranking,
        shards=SHARDS,
        by="rank",
        name="bluenile",
        system_k=environment.system_k,
        latency_mean=environment.latency_seconds,
        latency_seed=environment.seed,
        fault_plan=fault_plan,
    )


def _flush_shard_caches(federation):
    """Retire every shard's cached answers so the next phase pays live
    round trips again."""
    if federation.result_cache is None:
        return
    for index in range(federation.shard_count):
        federation.invalidate_shard(index)


def _run_rerank_workload(federation, scenarios):
    """Replay the scenario workload on a fresh reranker (cold engine caches).

    Returns per-scenario outcomes: either the page signature or the error
    that ended the request."""
    reranker = QueryReranker(federation, config=RerankConfig(resilience=RESILIENCE))
    outcomes = []
    for scenario in scenarios:
        try:
            rows = reranker.rerank(scenario.query, scenario.ranking).top(DEPTH)
        except Exception as exc:  # noqa: BLE001 - failures are the measurement
            outcomes.append({"name": scenario.name, "ok": False,
                             "error": type(exc).__name__})
        else:
            outcomes.append({
                "name": scenario.name,
                "ok": True,
                "signature": tuple(row["id"] for row in rows),
            })
    return outcomes


def _scatter_queries(count):
    """Distinct price-band top-k queries for the direct scatter workload."""
    return [
        SearchQuery.build(ranges={"price": (300.0, 2000.0 + 150.0 * index)})
        for index in range(count)
    ]


def _run_scatter_workload(federation, count=SCATTER_QUERIES):
    """Issue ``count`` top-k queries straight at the scatter layer.

    This is the request stream of the outage phase: each arriving query must
    come back as a (possibly degraded) answer, not an exception."""
    outcomes = []
    for query in _scatter_queries(count):
        try:
            result = federation.search(query)
        except Exception as exc:  # noqa: BLE001 - failures are the measurement
            outcomes.append({"ok": False, "error": type(exc).__name__})
        else:
            outcomes.append({
                "ok": True,
                "degraded": result.degraded,
                "missing": list(result.missing_shards),
                "signature": tuple(row["id"] for row in result.rows),
            })
    return outcomes


def _counter_delta(before, after):
    return {
        key: after[key] - before.get(key, 0)
        for key, value in after.items()
        if isinstance(value, (int, float))
    }


def _completion_rate(outcomes):
    return sum(1 for outcome in outcomes if outcome["ok"]) / len(outcomes)


@pytest.mark.benchmark(group="fault-tolerance")
def test_chaos_differential(benchmark, environment, bench_quick):
    """Scripted chaos on a 3-shard federation: transient storm, one-shard
    outage, heal, byte-identity, deterministic replay."""
    scenarios = bluenile_scenarios_1d(environment.diamond_schema)
    scatter_count = SCATTER_QUERIES
    if bench_quick:
        scenarios = scenarios[:3]
        scatter_count = 20

    def run():
        reference = _make_federation(environment)
        chaos = _make_federation(environment, fault_plan=CHAOS_PLAN)
        clock = ManualClock()
        chaos.configure_resilience(RESILIENCE, clock=clock)

        reference_outcomes = _run_rerank_workload(reference, scenarios)

        # Phase 1: ~20% transient faults; retries must absorb all of them.
        base = chaos.resilience_snapshot()
        transient_outcomes = _run_rerank_workload(chaos, scenarios)
        transient = _counter_delta(base, chaos.resilience_snapshot())

        # Phase 2: shard 2 becomes a permanent timeout zone; the scatter
        # workload keeps arriving and must keep answering degraded.
        chaos.fault_injectors()[2].set_plan(OUTAGE_PLAN)
        _flush_shard_caches(chaos)
        base = chaos.resilience_snapshot()
        outage_outcomes = _run_scatter_workload(chaos, scatter_count)
        outage = _counter_delta(base, chaos.resilience_snapshot())

        # Phase 3: heal every injector, let the breaker's recovery elapse.
        for shard_injector in chaos.fault_injectors():
            shard_injector.deactivate()
        clock.advance(RECOVERY_SECONDS + 1.0)
        _flush_shard_caches(chaos)
        base = chaos.resilience_snapshot()
        healed_outcomes = _run_rerank_workload(chaos, scenarios)
        healed = _counter_delta(base, chaos.resilience_snapshot())
        breakers = chaos.resilience_snapshot()["breakers"]

        # Phase 4: the chaos schedule is replayable — a rebuilt federation
        # driven through the same trace lands on identical fault draws and
        # per-query outcomes, byte for byte.
        def replay_profile():
            rebuilt = _make_federation(environment, fault_plan=CHAOS_PLAN)
            rebuilt.configure_resilience(RESILIENCE, clock=ManualClock())
            outcomes = _run_scatter_workload(rebuilt, scatter_count)
            return outcomes, [
                (shard.schedule_index, shard.fault_counts())
                for shard in rebuilt.fault_injectors()
            ]

        return {
            "reference": reference_outcomes,
            "transient": {"outcomes": transient_outcomes, "delta": transient},
            "outage": {"outcomes": outage_outcomes, "delta": outage},
            "healed": {"outcomes": healed_outcomes, "delta": healed,
                       "breakers": breakers},
            "replays": (replay_profile(), replay_profile()),
        }

    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for phase in ("transient", "outage", "healed"):
        delta = payload[phase]["delta"]
        rows.append(
            f"{phase:>10s} ok={_completion_rate(payload[phase]['outcomes']):>5.0%} "
            f"retries={delta['retries']:>4d} "
            f"degraded={delta['degraded_scatters']:>3d} "
            f"timeouts={delta['timeouts_paid']:>3d} "
            f"shorted={delta['short_circuits']:>4d} "
            f"opens={delta['breaker_opens']:>2d} closes={delta['breaker_closes']:>2d}"
        )
    print_table(
        "FT-CHAOS — transient storm / shard outage / heal",
        f"{len(payload['reference'])} rerank requests + "
        f"{len(payload['outage']['outcomes'])} scatter queries per phase, "
        f"{SHARDS} shards, plan seed {CHAOS_PLAN.seed}",
        rows,
    )

    transient = payload["transient"]
    outage = payload["outage"]
    healed = payload["healed"]
    benchmark.extra_info.update(
        {
            "transient_retries": transient["delta"]["retries"],
            "transient_completion": _completion_rate(transient["outcomes"]),
            "outage_completion": _completion_rate(outage["outcomes"]),
            "outage_degraded_scatters": outage["delta"]["degraded_scatters"],
            "outage_timeouts_paid": outage["delta"]["timeouts_paid"],
            "outage_short_circuits": outage["delta"]["short_circuits"],
            "healed_matches_reference": True,
        }
    )

    # TRANSIENT gates: retries absorb the storm — no failures, no degradation.
    assert _completion_rate(transient["outcomes"]) >= 0.99, transient["outcomes"]
    assert transient["delta"]["retries"] > 0
    assert transient["delta"]["degraded_scatters"] == 0

    # OUTAGE gates: every request completes as a degraded partial answer
    # naming the dead shard, the breaker opens, and short circuits keep the
    # timeout bill bounded — the pool pays at most one breaker-threshold run
    # of timeouts plus the final attempt burst, not one timeout per query.
    assert _completion_rate(outage["outcomes"]) >= 0.99, outage["outcomes"]
    degraded = [o for o in outage["outcomes"] if o["ok"] and o["degraded"]]
    assert degraded and all("bluenile#2" in o["missing"] for o in degraded)
    assert outage["delta"]["degraded_scatters"] > 0
    assert outage["delta"]["breaker_opens"] >= 1
    assert outage["delta"]["short_circuits"] > 0
    timeout_ceiling = (
        RESILIENCE.breaker_failure_threshold + RESILIENCE.max_attempts
    )
    assert outage["delta"]["timeouts_paid"] <= timeout_ceiling, (
        f"open breaker failed to contain the outage: paid "
        f"{outage['delta']['timeouts_paid']} timeouts (ceiling {timeout_ceiling})"
    )

    # HEAL gates: the half-open probe closes the breaker, nothing degrades,
    # and the replayed workload is byte-identical to the never-faulted run.
    assert healed["delta"]["breaker_closes"] >= 1
    assert healed["delta"]["degraded_scatters"] == 0
    assert all(
        breaker["state"] == BreakerState.CLOSED for breaker in healed["breakers"]
    )
    for clean, after in zip(payload["reference"], healed["outcomes"]):
        assert after["ok"], after
        assert after["signature"] == clean["signature"], (
            f"{after['name']}: healed pages diverged from the fault-free run"
        )

    # REPLAY gate: same plan, same trace, same faults — byte for byte.
    first, second = payload["replays"]
    assert first == second, "chaos schedule is not replayable"
