"""SC-BW — the paper's best-case and worst-case ranking functions.

Worst case: ``price + length_width_ratio`` on Blue Nile.  About 20 % of the
stones share ``length_width_ratio = 1.0`` — far more than ``system-k`` — so
walking the answer requires crawling that value group; thanks to on-the-fly
indexing the cost collapses on subsequent requests.

Best case: ``price + squarefeet`` on Zillow.  The function is positively
correlated both with the data and with the hidden ranking, so a handful of
queries suffices.
"""

from __future__ import annotations

import pytest

from benchmarks._tables import print_table
from repro.workloads.experiments import run_best_worst_cases


@pytest.mark.benchmark(group="best-worst-cases")
def test_best_versus_worst_case(benchmark, environment, depth):
    """Query cost of the best-case and worst-case functions (cold and warm)."""

    def run():
        return run_best_worst_cases(environment, depth=depth)

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    worst, best = payload["worst_case"], payload["best_case"]

    benchmark.extra_info.update(
        {
            "worst_ranking": worst["ranking"],
            "worst_ta_cold_queries": worst["ta_cold"]["queries"],
            "worst_ta_warm_queries": worst["ta_warm"]["queries"],
            "worst_rerank_queries": worst["rerank"]["queries"],
            "lwr_cluster_size": worst["lwr_cluster_size"],
            "best_ranking": best["ranking"],
            "best_ta_queries": best["ta"]["queries"],
            "best_rerank_queries": best["rerank"]["queries"],
        }
    )
    print_table(
        f"SC-BW — best vs. worst case (top-{depth})",
        f"{'case':>38s} {'queries':>8s} {'seconds':>8s}",
        [
            f"{'worst (price+lwr), MD-TA cold':>38s} {worst['ta_cold']['queries']:8d} "
            f"{worst['ta_cold']['seconds']:8.1f}",
            f"{'worst (price+lwr), MD-TA warm':>38s} {worst['ta_warm']['queries']:8d} "
            f"{worst['ta_warm']['seconds']:8.1f}",
            f"{'worst (price+lwr), MD-RERANK':>38s} {worst['rerank']['queries']:8d} "
            f"{worst['rerank']['seconds']:8.1f}",
            f"{'best (price+sqft), MD-TA':>38s} {best['ta']['queries']:8d} "
            f"{best['ta']['seconds']:8.1f}",
            f"{'best (price+sqft), MD-RERANK':>38s} {best['rerank']['queries']:8d} "
            f"{best['rerank']['seconds']:8.1f}",
        ],
    )
    print(
        f"\n  length_width_ratio = 1.0 cluster: {worst['lwr_cluster_size']} tuples "
        f"({worst['lwr_cluster_fraction']:.0%} of the catalog), system-k = "
        f"{environment.system_k}"
    )
    # The paper's qualitative claims.
    assert worst["ta_cold"]["queries"] > best["ta"]["queries"]
    assert worst["ta_warm"]["queries"] < worst["ta_cold"]["queries"]
