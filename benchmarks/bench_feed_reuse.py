"""SC-FEED — cross-session Get-Next sharing through the rerank feed.

The QR2 UI funnels users toward a list of popular ranking functions, so many
sessions request the identical *(filter, ranking, algorithm)* stream.  PRs 1-4
made the repeated *external queries* nearly free; the shared rerank feed
amortizes the remaining per-session cost — the Get-Next algorithm itself.
This bench serves the same popular-function workload to several sessions with
the feed on and off:

* **REUSE** — with the feed on, session 1 (the leader) pays the algorithm and
  its external queries; sessions 2..N (followers) must replay the verified
  emission prefix with **zero** external queries and a median page latency at
  least ``MIN_SPEEDUP``× lower than the leader's, while serving pages
  byte-identical to a feed-disabled control run;
* **DIFFERENTIAL** — a randomized sweep over sources, filters, rankings (1D
  and MD), and algorithms (BINARY/RERANK/TA): every page of every session must
  be byte-identical between the feed-enabled and feed-disabled configurations
  (replay is replay, never an approximation).

The correctness gates (zero follower queries, byte-identical pages) always
run; ``--bench-quick`` shrinks the workload for CI.
"""

from __future__ import annotations

import pytest

from benchmarks._tables import print_table
from repro.workloads.experiments import run_feed_differential, run_feed_reuse

SESSIONS = 6
PAGES = 3
PAGE_SIZE = 5
MIN_SPEEDUP = 5.0


@pytest.mark.benchmark(group="feed-reuse")
def test_feed_followers_replay_for_free(benchmark, environment, bench_quick):
    """Sessions 2..N of a popular-function workload must serve every page at
    zero external queries and >= 5x lower median latency than session 1."""
    sessions = 4 if bench_quick else SESSIONS
    pages = 2 if bench_quick else PAGES

    def run():
        return run_feed_reuse(
            environment, sessions=sessions, pages=pages, page_size=PAGE_SIZE
        )

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    for source, data in payload.items():
        benchmark.extra_info.update(
            {
                f"{source}_leader_queries": data["leader_queries"],
                f"{source}_follower_queries": data["follower_queries"],
                f"{source}_median_speedup": round(
                    min(data["median_speedup"], 1e9), 1
                ),
                f"{source}_wall_speedup": round(min(data["wall_speedup"], 1e9), 1),
                f"{source}_replayed_tuples": data["replayed_tuples"],
            }
        )
        store = data["feed_store"]
        rows = [
            f"{'session':>12s} " + " ".join(f"{i + 1:>7d}" for i in range(sessions)),
            f"{'feed':>12s} "
            + " ".join(
                f"{c:>7d}" for c in [data["leader_queries"], *data["follower_queries"]]
            ),
            f"{'no feed':>12s} " + " ".join(f"{c:>7d}" for c in data["nofeed_queries"]),
            f"{'speedup':>12s} {data['median_speedup']:>10.1f}x latency "
            f"({data['wall_speedup']:.1f}x wall), "
            f"{store['leaders']} leader / {store['followers']} followers",
        ]
        print_table(
            f"SC-FEED [{source} / {data['algorithm']}] — {data['popular_function']}",
            "external queries per session, identical popular-function workload",
            rows,
        )
        # Correctness gates: always enforced.
        assert data["pages_match"], f"{source}: feed pages diverged from control"
        assert all(q == 0 for q in data["follower_queries"]), (
            f"{source}: follower sessions issued external queries "
            f"{data['follower_queries']}"
        )
        assert data["replayed_tuples"] > 0
        # Perf gates: the leader pays real round trips (simulated latency)
        # and algorithm work; a follower page is a pure in-memory replay.
        # Zero follower queries already implies the >= 80 % external-query
        # reduction gate, asserted explicitly against the leader's cost.
        assert data["leader_queries"] > 0
        baseline = data["leader_queries"] * len(data["follower_queries"])
        reduction = 1.0 - sum(data["follower_queries"]) / baseline
        assert reduction >= 0.80
        assert data["median_speedup"] >= MIN_SPEEDUP


@pytest.mark.benchmark(group="feed-reuse")
def test_feed_randomized_differential(benchmark, environment, bench_quick):
    """Feed-enabled runs must be byte-identical to feed-disabled runs across
    randomized sources, filters, rankings, and algorithms."""
    trials = 3 if bench_quick else 6

    def run():
        return run_feed_differential(
            environment, trials=trials, sessions=3, pages=2, page_size=PAGE_SIZE
        )

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for trial in payload["trials"]:
        rows.append(
            f"{trial['trial']:>4d} {trial['source']:>9s} {trial['algorithm']:>7s} "
            f"leader={trial['leader_queries']:>4d} "
            f"followers={trial['follower_queries']} "
            f"match={trial['pages_match']}"
        )
    print_table(
        "SC-FEED-DIFF — randomized feed-on/feed-off differential",
        f"{trials} random (source, filter, ranking, algorithm) trials",
        rows,
    )
    benchmark.extra_info.update({"trials": trials, "all_match": payload["all_match"]})
    for trial in payload["trials"]:
        assert trial["pages_match"], f"trial {trial['trial']} diverged: {trial}"
        assert not any(trial["follower_queries"]), (
            f"trial {trial['trial']} followers issued queries: {trial}"
        )
    assert payload["all_match"]
