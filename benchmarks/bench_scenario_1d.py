"""SC-1D — the "1D" demonstration scenario.

The demo plan runs 1D reranking on both web databases, for several filter
predicates, in both ascending and descending order, so that the user ranking
is positively correlated, negatively correlated, or independent with respect
to the hidden system ranking.  The headline comparison is the number of
queries each algorithm (1D-BASELINE / 1D-BINARY / 1D-RERANK) issues.
"""

from __future__ import annotations

import statistics as pystats

import pytest

from benchmarks._tables import print_table
from repro.core.reranker import Algorithm
from repro.workloads.experiments import (
    default_1d_scenarios,
    run_scenario_suite,
    summarize_by_correlation,
)

ALGORITHMS = [Algorithm.BASELINE, Algorithm.BINARY, Algorithm.RERANK]


@pytest.mark.benchmark(group="scenario-1d")
@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.value)
def test_scenario_1d_query_cost(benchmark, environment, depth, algorithm):
    """Mean query cost of one 1D algorithm across every demonstration scenario."""
    scenarios = default_1d_scenarios(environment)

    def run():
        return run_scenario_suite(scenarios, [algorithm], environment, depth=depth)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    per_correlation = summarize_by_correlation(results)
    mean_queries = pystats.mean(result.external_queries for result in results)
    benchmark.extra_info.update(
        {
            "algorithm": algorithm.value,
            "scenarios": len(results),
            "mean_queries": round(mean_queries, 1),
            "mean_queries_by_correlation": {
                correlation: round(values.get(algorithm.value, 0.0), 1)
                for correlation, values in per_correlation.items()
            },
        }
    )
    print_table(
        f"SC-1D — 1D-{algorithm.value.upper()} (top-{depth} per scenario)",
        f"{'scenario':>24s} {'source':>9s} {'correlation':>12s} {'queries':>8s} {'seconds':>8s}",
        [
            f"{result.scenario:>24s} {result.source:>9s} {result.correlation:>12s} "
            f"{result.external_queries:8d} {result.processing_seconds:8.1f}"
            for result in results
        ],
    )
    for result in results:
        assert result.tuples_returned > 0
        assert result.external_queries > 0
