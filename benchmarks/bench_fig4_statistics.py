"""FIG4 — the statistics panel of a Zillow reranking request (paper Fig. 4).

The paper's screenshot reports that reranking Zillow by
``price - 0.3 squarefeet`` issued 27 queries to the Zillow server and took 33
seconds.  This bench runs the same request against the simulated Zillow
(~1 s of accounted latency per query) and reports the same two numbers.
"""

from __future__ import annotations

import pytest

from benchmarks._tables import print_table
from repro.workloads.experiments import run_fig4_statistics


@pytest.mark.benchmark(group="fig4-statistics")
def test_fig4_statistics_panel(benchmark, environment, depth):
    """Query cost and processing time of the Fig. 4 request."""

    def run():
        return run_fig4_statistics(environment, page_size=depth)

    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    benchmark.extra_info.update(
        {
            "ranking": payload["ranking"],
            "external_queries": payload["external_queries"],
            "processing_seconds": round(payload["processing_seconds"], 2),
            "paper_external_queries": payload["paper_reference"]["external_queries"],
            "paper_processing_seconds": payload["paper_reference"]["processing_seconds"],
        }
    )
    print_table(
        f"FIG4 — {payload['ranking']} ({payload['rows_returned']} results)",
        f"{'metric':>24s} {'measured':>10s} {'paper':>10s}",
        [
            f"{'external queries':>24s} {payload['external_queries']:>10d} "
            f"{payload['paper_reference']['external_queries']:>10d}",
            f"{'processing seconds':>24s} {payload['processing_seconds']:>10.1f} "
            f"{payload['paper_reference']['processing_seconds']:>10.1f}",
        ],
    )
    # Same order of magnitude as the paper: tens of queries, not hundreds.
    assert payload["external_queries"] < 200
