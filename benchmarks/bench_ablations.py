"""ABL — ablations of the QR2 design choices (not a paper figure).

The ICDE'18 paper attributes QR2's practicality to four engineering choices on
top of the VLDB'16 algorithms: parallel query processing, the per-session
seen-tuple cache, on-the-fly dense-region indexing, and operating under the
web database's fixed ``system-k``.  Each ablation below switches one of them
off (or sweeps it) and reports the impact on query cost and processing time
for a fixed reference request.
"""

from __future__ import annotations

import pytest

from benchmarks._tables import print_table
from repro.config import RerankConfig
from repro.core.functions import LinearRankingFunction
from repro.core.normalization import MinMaxNormalizer
from repro.core.reranker import Algorithm, QueryReranker
from repro.dataset.diamonds import DiamondCatalogConfig, diamond_schema, generate_diamond_catalog
from repro.webdb.database import HiddenWebDatabase
from repro.webdb.latency import LatencyModel
from repro.webdb.query import SearchQuery
from repro.webdb.ranking import FeaturedScoreRanking


def _reference_request(environment):
    """The fixed request used by the on/off ablations: the paper's 2D Blue
    Nile function over the whole catalog."""
    schema = environment.diamond_schema
    ranking = LinearRankingFunction(
        {"price": 1.0, "carat": -0.5},
        normalizer=MinMaxNormalizer.from_schema(schema, ["price", "carat"]),
    )
    return SearchQuery.everything(), ranking


def _run(environment, config, depth):
    query, ranking = _reference_request(environment)
    reranker = QueryReranker(environment.database("bluenile"), config=config)
    stream = reranker.rerank(query, ranking, algorithm=Algorithm.RERANK)
    stream.top(depth)
    return stream.statistics.snapshot()


@pytest.mark.benchmark(group="ablations")
@pytest.mark.parametrize("parallel", [True, False], ids=["parallel-on", "parallel-off"])
def test_ablation_parallel_processing(benchmark, environment, depth, parallel):
    """Parallel query processing mostly buys wall-clock time (round trips are
    overlapped), at an essentially unchanged query cost."""
    config = RerankConfig(enable_parallel=parallel)
    snapshot = benchmark.pedantic(lambda: _run(environment, config, depth), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "parallel": parallel,
            "external_queries": snapshot["external_queries"],
            "processing_seconds": round(snapshot["processing_seconds"], 2),
        }
    )
    print_table(
        f"ABL parallel={'on' if parallel else 'off'}",
        f"{'external queries':>18s} {'processing s':>13s}",
        [f"{snapshot['external_queries']:>18d} {snapshot['processing_seconds']:>13.1f}"],
    )
    assert snapshot["tuples_returned"] == depth


@pytest.mark.benchmark(group="ablations")
@pytest.mark.parametrize("cache", [True, False], ids=["session-cache-on", "session-cache-off"])
def test_ablation_session_cache(benchmark, environment, depth, cache):
    """The session cache accelerates deep paging: without it every Get-Next
    call re-covers the space from scratch."""
    config = RerankConfig(enable_session_cache=cache)
    snapshot = benchmark.pedantic(lambda: _run(environment, config, depth), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "session_cache": cache,
            "external_queries": snapshot["external_queries"],
            "cache_hits": snapshot["cache_hits"],
        }
    )
    print_table(
        f"ABL session-cache={'on' if cache else 'off'}",
        f"{'external queries':>18s} {'cache hits':>11s}",
        [f"{snapshot['external_queries']:>18d} {snapshot['cache_hits']:>11d}"],
    )
    assert snapshot["tuples_returned"] == depth


@pytest.mark.benchmark(group="ablations")
@pytest.mark.parametrize("system_k", [10, 20, 50], ids=lambda k: f"k={k}")
def test_ablation_system_k(benchmark, depth, bench_scale, system_k):
    """A larger ``system-k`` lets every query observe more tuples, so the
    reranking needs fewer of them (the web database, not QR2, controls this)."""
    config = DiamondCatalogConfig(size=max(int(4000 * bench_scale), 200), seed=2018)
    database = HiddenWebDatabase(
        generate_diamond_catalog(config),
        diamond_schema(config),
        FeaturedScoreRanking("price", boost_weight=2500.0),
        system_k=system_k,
        latency=LatencyModel.accounted(1.0),
        name=f"bluenile-k{system_k}",
    )
    schema = diamond_schema(config)
    ranking = LinearRankingFunction(
        {"price": 1.0, "carat": -0.5},
        normalizer=MinMaxNormalizer.from_schema(schema, ["price", "carat"]),
    )

    def run():
        reranker = QueryReranker(database, config=RerankConfig())
        stream = reranker.rerank(SearchQuery.everything(), ranking, algorithm=Algorithm.RERANK)
        stream.top(depth)
        return stream.statistics.snapshot()

    snapshot = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"system_k": system_k, "external_queries": snapshot["external_queries"]}
    )
    print_table(
        f"ABL system-k={system_k}",
        f"{'external queries':>18s}",
        [f"{snapshot['external_queries']:>18d}"],
    )
    assert snapshot["tuples_returned"] == depth


@pytest.mark.benchmark(group="ablations")
@pytest.mark.parametrize("dense_depth", [6, 12, 40], ids=lambda d: f"dense-depth={d}")
def test_ablation_dense_split_depth(benchmark, environment, depth, dense_depth):
    """Sweep of the dense-region trigger: crawling earlier (small depth) costs
    more up front but fills the shared index faster; a huge depth effectively
    disables on-the-fly indexing for this workload."""
    from repro.core.functions import SingleAttributeRanking

    config = RerankConfig(dense_split_depth=dense_depth)
    database = environment.database("bluenile")
    ranking = SingleAttributeRanking("length_width_ratio", ascending=True)
    query = SearchQuery.build(ranges={"length_width_ratio": (0.995, 1.6)})

    def run():
        reranker = QueryReranker(database, config=config)
        cold = reranker.rerank(query, ranking, algorithm=Algorithm.RERANK)
        cold.top(depth)
        warm = reranker.rerank(query, ranking, algorithm=Algorithm.RERANK)
        warm.top(depth)
        return {
            "cold": cold.statistics.external_queries,
            "warm": warm.statistics.external_queries,
            "regions": reranker.dense_index.region_count(),
        }

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"dense_split_depth": dense_depth, **payload})
    print_table(
        f"ABL dense-split-depth={dense_depth}",
        f"{'cold queries':>13s} {'warm queries':>13s} {'regions':>8s}",
        [f"{payload['cold']:>13d} {payload['warm']:>13d} {payload['regions']:>8d}"],
    )
    assert payload["warm"] <= payload["cold"]
