"""SC-DENSE — the interval dense-region index vs the seed's linear scan.

PR 2 made the *server* side sublinear; PR 4 does the same for the last linear
client-side hot path: the on-the-fly dense-region index that answers Get-Next
probes locally once a region has been crawled.  Two gates:

* **lookup speedup** (full runs only): on a region-heavy index — the state a
  long-lived 1D-RERANK deployment accumulates — the interval implementation
  must answer the probe workload at least 5× faster at the median than the
  naive linear reference, with identical answers on every probe both cover;
* **differential** (always, including ``--bench-quick`` CI smoke runs): an
  end-to-end region-heavy 1D-RERANK workload must produce byte-identical
  pages under both implementations, with the interval index issuing **no
  more** external queries than the naive one (region coalescing can only
  remove crawls, never add them).
"""

from __future__ import annotations

import random
import statistics
import time
from typing import List, Optional, Tuple

import pytest

from benchmarks._tables import print_table
from repro.core.dense_index import DenseRegionIndex
from repro.core.regions import HyperRectangle
from repro.dataset.diamonds import DiamondCatalogConfig, diamond_schema
from repro.webdb.query import RangePredicate, SearchQuery
from repro.workloads.experiments import run_dense_index_differential

FULL_REGIONS = 600
QUICK_REGIONS = 120
FULL_PROBES = 400
QUICK_PROBES = 120
ROWS_PER_REGION = 8
TIMING_ROUNDS = 5
MIN_MEDIAN_SPEEDUP = 5.0

PRICE_DOMAIN = (200.0, 25000.0)


def _build_region_set(
    region_count: int, seed: int = 11
) -> Tuple[List[Tuple[HyperRectangle, List[dict]]], List[dict]]:
    """``region_count`` 1D price regions separated by real gaps (so both
    implementations hold the same region count — this bench isolates lookup
    speed, the differential bench covers coalescing), each with its tuples."""
    rng = random.Random(seed)
    lo, hi = PRICE_DOMAIN
    slot = (hi - lo) / region_count
    regions: List[Tuple[HyperRectangle, List[dict]]] = []
    universe: List[dict] = []
    for i in range(region_count):
        lower = lo + i * slot
        upper = lower + slot * 0.7  # 30 % gap to the next region
        rows = [
            {
                "id": f"r{i}-{j}",
                "price": round(rng.uniform(lower, upper), 2),
                "carat": round(rng.uniform(0.2, 5.0), 2),
            }
            for j in range(ROWS_PER_REGION)
        ]
        universe.extend(rows)
        regions.append((HyperRectangle.from_bounds({"price": (lower, upper)}), rows))
    return regions, universe


def _build_probe_workload(
    regions, probe_count: int, seed: int = 29
) -> List[Tuple[RangePredicate, Optional[SearchQuery]]]:
    """The probe mix a 1D-RERANK session issues against the index: covered
    sub-intervals and point queries (hits), plus spanning probes that fall in
    the gaps (misses — the common case early in a session)."""
    rng = random.Random(seed)
    base = SearchQuery.build(ranges={"carat": (0.5, 4.5)})
    probes: List[Tuple[RangePredicate, Optional[SearchQuery]]] = []
    for _ in range(probe_count):
        box, rows = regions[rng.randrange(len(regions))]
        side = box.side("price")
        roll = rng.random()
        if roll < 0.45:
            # Covered sub-interval of one region.
            a = rng.uniform(side.lower, side.upper)
            b = rng.uniform(side.lower, side.upper)
            lower, upper = min(a, b), max(a, b)
            probes.append((RangePredicate("price", lower, upper), base if rng.random() < 0.5 else None))
        elif roll < 0.70:
            # Point probe at a real tuple value (the value-group lookup).
            value = float(rng.choice(rows)["price"])
            probes.append((RangePredicate("price", value, value), None))
        else:
            # Spanning probe reaching into the inter-region gap: a miss.
            probes.append(
                (RangePredicate("price", side.lower, side.upper + (side.upper - side.lower)), None)
            )
    return probes


def _run_probes(index: DenseRegionIndex, probes) -> Tuple[List[Optional[list]], List[float]]:
    answers: List[Optional[list]] = []
    timings: List[float] = []
    for predicate, base_query in probes:
        started = time.perf_counter()
        rows = index.lookup_interval("price", predicate, base_query)
        timings.append(time.perf_counter() - started)
        answers.append(rows)
    return answers, timings


def _normalize(rows: Optional[list]) -> Optional[list]:
    if rows is None:
        return None
    return sorted((dict(row) for row in rows), key=lambda row: str(row["id"]))


@pytest.mark.benchmark(group="dense-index")
def test_dense_lookup_speedup(benchmark, bench_quick):
    """≥5× median lookup speedup on a region-heavy index, identical answers
    (speedup asserted on full runs; answer equality asserted always)."""
    region_count = QUICK_REGIONS if bench_quick else FULL_REGIONS
    probe_count = QUICK_PROBES if bench_quick else FULL_PROBES
    regions, _ = _build_region_set(region_count)
    probes = _build_probe_workload(regions, probe_count)
    schema = diamond_schema(DiamondCatalogConfig(size=200, seed=1))

    def build(impl: str) -> DenseRegionIndex:
        index = DenseRegionIndex(schema, impl=impl)
        for box, rows in regions:
            index.add_region(box, rows)
        return index

    def run():
        naive = build("naive")
        interval = build("interval")
        assert naive.region_count() == interval.region_count() == region_count
        naive_rounds: List[List[float]] = []
        interval_rounds: List[List[float]] = []
        naive_answers = interval_answers = None
        for _ in range(TIMING_ROUNDS):
            naive_answers, naive_timings = _run_probes(naive, probes)
            interval_answers, interval_timings = _run_probes(interval, probes)
            naive_rounds.append(naive_timings)
            interval_rounds.append(interval_timings)
        return naive_answers, interval_answers, naive_rounds, interval_rounds

    naive_answers, interval_answers, naive_rounds, interval_rounds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    divergences = sum(
        1
        for expected, actual in zip(naive_answers, interval_answers)
        if _normalize(expected) != _normalize(actual)
    )
    assert divergences == 0, f"{divergences} probes diverged between implementations"

    # Median per-probe latency over the best round for each implementation.
    naive_median = min(statistics.median(timings) for timings in naive_rounds)
    interval_median = min(statistics.median(timings) for timings in interval_rounds)
    median_speedup = naive_median / interval_median if interval_median > 0 else float("inf")

    benchmark.extra_info.update(
        {
            "regions": region_count,
            "probes": probe_count,
            "naive_median_us": round(naive_median * 1e6, 2),
            "interval_median_us": round(interval_median * 1e6, 2),
            "median_speedup": round(median_speedup, 2),
            "quick_mode": bench_quick,
        }
    )
    print_table(
        "SC-DENSE — naive linear scan vs interval dense-region index",
        f"{region_count} regions, {probe_count} probes, 0 divergences",
        [
            f"{'naive median':>16s} {naive_median * 1e6:>10.2f} us/lookup",
            f"{'interval median':>16s} {interval_median * 1e6:>10.2f} us/lookup",
            f"{'median speedup':>16s} {median_speedup:>10.2f} x",
        ],
    )
    if not bench_quick:
        assert median_speedup >= MIN_MEDIAN_SPEEDUP, (
            f"median lookup speedup {median_speedup:.2f}x below the "
            f"{MIN_MEDIAN_SPEEDUP:.0f}x floor"
        )


@pytest.mark.benchmark(group="dense-index")
def test_dense_rerank_differential(benchmark, environment, depth):
    """End-to-end 1D-RERANK under both implementations: byte-identical pages,
    and the interval index must not issue more external queries."""

    def run():
        return run_dense_index_differential(environment, repetitions=2, depth=depth)

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    naive = payload["naive"]
    interval = payload["interval"]
    benchmark.extra_info.update(
        {
            "naive_total_queries": naive["total"],
            "interval_total_queries": interval["total"],
            "naive_regions": naive["index"]["regions"],
            "interval_regions": interval["index"]["regions"],
            "interval_coalesced": interval["index"]["coalesced"],
        }
    )
    requests = len(naive["costs"])
    print_table(
        "SC-DENSE-DIFF [bluenile / 1D-RERANK] — naive vs interval index",
        f"{requests} requests over {len(payload['windows'])} nested windows; "
        f"interval index coalesced {interval['index']['coalesced']} merges "
        f"({interval['index']['regions']} regions vs {naive['index']['regions']})",
        [
            f"{'naive':>12s} {naive['total']:>7d} external queries",
            f"{'interval':>12s} {interval['total']:>7d} external queries",
        ],
    )
    assert payload["pages_match"], "reranked pages diverged between implementations"
    assert interval["total"] <= naive["total"], (
        f"interval index issued more external queries "
        f"({interval['total']} > {naive['total']})"
    )
