"""SC-IDX — effectiveness of on-the-fly dense-region indexing.

The demo plan: "after issuing multiple queries, we will track the performance
of (1D/MD)-RERANK in terms of both processing time and the number of submitted
queries".  This bench issues the same dense-region query repeatedly and tracks
the per-repetition cost of 1D-RERANK (shared index — pays once, then answers
locally) against 1D-BINARY (stateless — pays every time).
"""

from __future__ import annotations

import pytest

from benchmarks._tables import print_table
from repro.workloads.experiments import run_onthefly_indexing

REPETITIONS = 5


@pytest.mark.benchmark(group="onthefly-indexing")
def test_onthefly_indexing_amortization(benchmark, environment, depth):
    """Per-repetition query cost of RERANK (indexed) versus BINARY (not)."""

    def run():
        return run_onthefly_indexing(environment, repetitions=REPETITIONS, depth=depth)

    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    benchmark.extra_info.update(
        {
            "workload": f"{payload['ranking']} where {payload['query']}",
            "rerank_costs": payload["rerank_costs"],
            "binary_costs": payload["binary_costs"],
            "rerank_amortized": round(payload["rerank_amortized"], 1),
            "binary_amortized": round(payload["binary_amortized"], 1),
            "index_regions": payload["index_regions"],
            "index_tuples": payload["index_tuples"],
        }
    )
    rows = [
        f"{'repetition':>12s} " + " ".join(f"{i + 1:>7d}" for i in range(REPETITIONS)),
        f"{'1D-RERANK':>12s} " + " ".join(f"{c:>7d}" for c in payload["rerank_costs"]),
        f"{'1D-BINARY':>12s} " + " ".join(f"{c:>7d}" for c in payload["binary_costs"]),
    ]
    print_table(
        f"SC-IDX — repeated query: {payload['ranking']} where {payload['query']}",
        "queries issued to the web database per repetition",
        rows,
    )
    # The paper's claim: the crawl is paid once and amortized afterwards.
    assert payload["rerank_costs"][1] < payload["rerank_costs"][0]
    assert payload["rerank_warm_cost"] < payload["binary_amortized"]
    assert payload["index_regions"] >= 1
