"""Substrate benchmark: cost of the hidden-database crawler.

The crawler is QR2's fallback for general-positioning violations (value groups
larger than ``system-k``) and the workhorse of on-the-fly indexing, so its
query cost directly bounds the worst-case behaviour of the service.  This
bench crawls the Blue Nile ``length_width_ratio = 1.0`` value group and the
whole low-price region and reports queries per retrieved tuple.
"""

from __future__ import annotations

import pytest

from benchmarks._tables import print_table
from repro.crawl.crawler import HiddenDatabaseCrawler, crawl_value_group
from repro.webdb.query import SearchQuery


@pytest.mark.benchmark(group="crawler")
def test_crawl_lwr_value_group(benchmark, environment):
    """Crawl every stone with length_width_ratio = 1.0 (the worst-case group)."""
    database = environment.database("bluenile")

    def run():
        return crawl_value_group(database, SearchQuery.everything(), "length_width_ratio", 1.0)

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    queries_per_tuple = stats.queries_issued / max(len(rows), 1)
    benchmark.extra_info.update(
        {
            "tuples": len(rows),
            "queries": stats.queries_issued,
            "queries_per_tuple": round(queries_per_tuple, 3),
            "max_depth": stats.max_depth,
        }
    )
    print_table(
        "Crawler — length_width_ratio = 1.0 value group",
        f"{'tuples':>8s} {'queries':>8s} {'queries/tuple':>14s} {'max depth':>10s}",
        [
            f"{len(rows):>8d} {stats.queries_issued:>8d} {queries_per_tuple:>14.2f} "
            f"{stats.max_depth:>10d}"
        ],
    )
    assert len(rows) > database.system_k
    # The crawl should stay within a small constant factor of the optimal
    # ceil(n/k) queries.
    assert stats.queries_issued <= 12 * (len(rows) / database.system_k + 1)


@pytest.mark.benchmark(group="crawler")
def test_crawl_low_price_region(benchmark, environment):
    """Crawl the cheapest slice of the catalog (a wide, populous region)."""
    database = environment.database("bluenile")
    query = SearchQuery.build(ranges={"price": (300.0, 1500.0)})

    def run():
        crawler = HiddenDatabaseCrawler(database)
        return crawler.crawl(query)

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    truth = database.count_matches(query)
    benchmark.extra_info.update(
        {"tuples": len(rows), "expected": truth, "queries": stats.queries_issued}
    )
    print_table(
        "Crawler — price in [300, 1500]",
        f"{'tuples':>8s} {'queries':>8s} {'leaves':>8s}",
        [f"{len(rows):>8d} {stats.queries_issued:>8d} {stats.leaves:>8d}"],
    )
    assert len(rows) == truth
