"""Small rendering and metadata helpers shared by the benchmark modules."""

from __future__ import annotations

import platform
from typing import Dict, Iterable

from repro.webdb import arrays


def print_table(title: str, header: str, rows: Iterable[str]) -> None:
    """Print a paper-style table (shown with ``-s`` / in captured output)."""
    print("\n" + title)
    print("-" * max(len(title), len(header)))
    print(header)
    for row in rows:
        print(row)


def backend_metadata() -> Dict[str, object]:
    """Environment metadata every bench record should carry.

    History records are compared across machines; whether numpy was
    importable (and therefore which concrete backend the default
    ``"buffer"`` knob resolved to) changes the columnar engine's absolute
    numbers, so it must be visible in ``extra_info``.
    """
    return {
        "columnar_backend": arrays.resolve_backend("buffer"),
        "numpy_available": arrays.numpy_available(),
        "python": platform.python_version(),
    }
