"""Small rendering helpers shared by the benchmark modules."""

from __future__ import annotations

from typing import Iterable


def print_table(title: str, header: str, rows: Iterable[str]) -> None:
    """Print a paper-style table (shown with ``-s`` / in captured output)."""
    print("\n" + title)
    print("-" * max(len(title), len(header)))
    print(header)
    for row in rows:
        print(row)
