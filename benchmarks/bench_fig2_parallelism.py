"""FIG2 — parallel processed queries per iteration (paper Fig. 2).

The paper reports that, while answering reranking queries on Blue Nile with
MD-RERANK, more than 90 % of the search queries were issued in parallel for a
3D ranking function and about 97 % (44 of 45) for a 2D function.  This bench
reruns both functions on the simulated Blue Nile and reports the same two
fractions (per-iteration and per-query).
"""

from __future__ import annotations

import pytest

from benchmarks._tables import print_table
from repro.workloads.experiments import run_fig2_parallelism


@pytest.mark.benchmark(group="fig2-parallelism")
@pytest.mark.parametrize("label", ["3d", "2d"])
def test_fig2_parallel_fraction(benchmark, environment, depth, label):
    """Measure the parallel fraction for one of the paper's two functions."""

    def run():
        return run_fig2_parallelism(environment, depth=depth)[label]

    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    paper = {"3d": 0.90, "2d": 0.97}
    benchmark.extra_info.update(
        {
            "ranking": payload["ranking"],
            "iterations": payload["iterations"],
            "external_queries": payload["queries"],
            "parallel_iteration_fraction": round(payload["parallel_fraction"], 3),
            "parallel_query_fraction": round(payload["parallel_query_fraction"], 3),
            "paper_parallel_query_fraction": paper[label],
        }
    )
    print_table(
        f"FIG2 ({label}) — {payload['ranking']}",
        f"{'metric':>34s} {'measured':>10s} {'paper':>10s}",
        [
            f"{'parallel iterations':>34s} {payload['parallel_fraction']:>10.0%} {'-':>10s}",
            f"{'queries issued in parallel':>34s} "
            f"{payload['parallel_query_fraction']:>10.0%} {paper[label]:>10.0%}",
            f"{'total external queries':>34s} {payload['queries']:>10d} {'-':>10s}",
        ],
    )
    # The qualitative claim of the figure: the overwhelming majority of the
    # queries go out in parallel groups.
    assert payload["parallel_query_fraction"] > 0.5
