"""Shared fixtures for the benchmark harness.

Every paper artifact (figure / demonstration scenario) has its own benchmark
module; they all share one simulated environment so that numbers are
comparable across benches.  The environment is scaled down from the full
catalogs (``BENCH_SCALE``) to keep a full ``pytest benchmarks/
--benchmark-only`` run in the minutes range; pass ``--bench-scale 1.0`` for
full-size catalogs.

Each benchmark prints a small paper-style table (visible with ``-s`` or in the
captured output section) and stores its headline numbers in
``benchmark.extra_info`` so they land in the pytest-benchmark JSON output.
"""

from __future__ import annotations

import pytest

from repro.workloads.experiments import ExperimentEnvironment

#: Default catalog scale for benchmark runs (fraction of the full catalogs).
BENCH_SCALE = 0.25
#: Default number of results fetched per reranking request.
BENCH_DEPTH = 10


def pytest_addoption(parser):
    parser.addoption(
        "--bench-scale",
        action="store",
        default=str(BENCH_SCALE),
        help="catalog scale for the benchmark environment (1.0 = full size)",
    )
    parser.addoption(
        "--bench-quick",
        action="store_true",
        default=False,
        help=(
            "CI smoke mode: shrink workloads and skip wall-clock speedup "
            "assertions (correctness gates still run)"
        ),
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> float:
    return float(request.config.getoption("--bench-scale"))


@pytest.fixture(scope="session")
def bench_quick(request) -> bool:
    return bool(request.config.getoption("--bench-quick"))


@pytest.fixture(scope="session")
def environment(bench_scale) -> ExperimentEnvironment:
    """The shared simulated environment (both web databases)."""
    return ExperimentEnvironment(catalog_scale=bench_scale, system_k=20, latency_seconds=1.0)


@pytest.fixture(scope="session")
def depth() -> int:
    """Number of results fetched per reranking request in the benches."""
    return BENCH_DEPTH
