"""SC-DELTA — selective invalidation after catalog change-sets, plus warming.

PR 8 threads structured catalog deltas (:class:`CatalogDelta`) through every
caching layer, so a small change retires only the derived state it could have
perturbed instead of flushing the world.  This bench measures both halves of
the story on a warmed reranker:

* **SURVIVAL** — after a change-set touching ~1% of the catalog (price-
  localized, the common "a few listings were repriced" case), at least 90% of
  result-cache entries and rerank feeds must keep serving, while every page
  served afterwards stays byte-identical to a full-flush recompute over the
  same mutated data (the pre-existing ``invalidate()`` is the oracle);
* **WARMING** — after a delta retires a popular feed, one pass of the
  popularity-driven :class:`FeedWarmer` must re-lead it so the next user
  request replays its warmed pages with **zero** external queries, again
  byte-identical to an independent recompute.

The correctness gates (byte-identity, survival floors, zero post-warm
queries) always run; ``--bench-quick`` shrinks the workload for CI.
"""

from __future__ import annotations

import pytest

from benchmarks._tables import print_table
from repro.config import DatabaseConfig, RerankConfig, ServiceConfig
from repro.core.functions import LinearRankingFunction, SingleAttributeRanking
from repro.core.normalization import MinMaxNormalizer
from repro.core.reranker import Algorithm, QueryReranker
from repro.dataset.diamonds import DiamondCatalogConfig
from repro.dataset.housing import HousingCatalogConfig
from repro.service.app import QR2Service
from repro.service.popular import popular_functions
from repro.service.sliders import ranking_from_sliders
from repro.service.sources import build_default_registry
from repro.webdb.query import SearchQuery
from repro.workloads.experiments import ExperimentEnvironment

PAGE_SIZE = 10
PAGES = 2
#: Disjoint price bands in the request pool; the delta is confined to one.
BANDS = 12
#: Fraction of the catalog a change-set touches.
DELTA_FRACTION = 0.01
MIN_SURVIVAL = 0.9


def _request_pool(schema):
    """Requests across disjoint price bands plus two extra rankings."""
    low, high = schema.domain_bounds("price")
    width = (high - low) / BANDS
    by_price = SingleAttributeRanking("price", ascending=True)
    by_carat = SingleAttributeRanking("carat", ascending=False)
    linear = LinearRankingFunction(
        {"price": 1.0, "carat": -0.5},
        normalizer=MinMaxNormalizer.from_schema(schema, ["price", "carat"]),
    )
    pool = []
    for band in range(BANDS):
        query = SearchQuery.build(
            ranges={"price": (low + band * width, low + (band + 1) * width)}
        )
        pool.append((query, by_price, Algorithm.RERANK))
    pool.append(
        (
            SearchQuery.build(ranges={"price": (low + width, low + 2 * width)}),
            linear,
            Algorithm.RERANK,
        )
    )
    pool.append(
        (
            SearchQuery.build(ranges={"price": (low + 8 * width, low + 9 * width)}),
            by_carat,
            Algorithm.RERANK,
        )
    )
    return pool


def _serve_pool(reranker: QueryReranker, pool):
    pages = []
    for query, ranking, algorithm in pool:
        stream = reranker.rerank(query, ranking, algorithm=algorithm)
        try:
            pages.append(
                [
                    [dict(row) for row in stream.next_page(PAGE_SIZE)]
                    for _ in range(PAGES)
                ]
            )
        finally:
            stream.close()
    return pages


def _localized_delta(db, sequence: int):
    """A change-set repricing ~1% of the catalog in its densest price cluster.

    The victims are the ``touched`` adjacent-by-price rows with the smallest
    price span, so the delta's hull (old + new versions) stays a few price
    units wide — the honest version of "a batch of near-identical listings
    was repriced"."""
    schema = db.schema
    low, high = schema.domain_bounds("price")
    rows = sorted(
        db.all_matches(SearchQuery.everything()),
        key=lambda row: float(row["price"]),
    )
    touched = max(1, round(len(rows) * DELTA_FRACTION))
    start = min(
        range(len(rows) - touched + 1),
        key=lambda i: float(rows[i + touched - 1]["price"])
        - float(rows[i]["price"]),
    )
    victims = rows[start : start + touched]
    shift = (high - low) * 0.0005 * (1 if sequence % 2 == 0 else -1)
    upserts = []
    for row in victims:
        repriced = dict(row)
        repriced["price"] = min(high, max(low, float(row["price"]) + shift))
        upserts.append(repriced)
    deletes = []
    previous = f"bench-delta-{sequence - 1}"
    if db.has_key(previous):
        deletes.append(previous)
    if sequence % 2 == 1:
        sibling = dict(victims[0])
        sibling[schema.key] = f"bench-delta-{sequence}"
        upserts.append(sibling)
    return upserts, deletes, len(victims)


def _occupancy(reranker: QueryReranker):
    return (
        len(reranker.result_cache.export_entries()),
        len(reranker.feed_store),
        int(reranker.dense_index.describe()["regions"]),
    )


@pytest.mark.benchmark(group="delta-invalidation")
def test_delta_survival_and_oracle_identity(benchmark, bench_scale, bench_quick):
    """A ~1% price-localized delta must retire <10% of cached state while
    every page served afterwards equals a full-flush recompute."""
    rounds = 2 if bench_quick else 3
    # Private environment: this bench mutates the catalog, so it must not
    # share the session-scoped ``environment`` fixture with other benches.
    env = ExperimentEnvironment(
        catalog_scale=bench_scale, system_k=20, latency_seconds=1.0
    )
    db = env.bluenile
    subject = env.make_reranker("bluenile")
    oracle = env.make_reranker("bluenile")
    pool = _request_pool(db.schema)

    def run():
        _serve_pool(subject, pool)  # warm every layer
        totals = {
            "before": [0, 0, 0],
            "after": [0, 0, 0],
            "touched": 0,
            "subject_queries": 0,
            "oracle_queries": 0,
            "rounds": rounds,
            "pages_match": True,
        }
        for sequence in range(rounds):
            upserts, deletes, touched = _localized_delta(db, sequence)
            before = _occupancy(subject)
            subject.apply_delta(upserts=upserts, deletes=deletes)
            after = _occupancy(subject)
            oracle.invalidate()
            for slot in range(3):
                totals["before"][slot] += before[slot]
                totals["after"][slot] += after[slot]
            totals["touched"] += touched
            checkpoint = db.queries_issued()
            subject_pages = _serve_pool(subject, pool)
            totals["subject_queries"] += db.queries_issued() - checkpoint
            checkpoint = db.queries_issued()
            oracle_pages = _serve_pool(oracle, pool)
            totals["oracle_queries"] += db.queries_issued() - checkpoint
            totals["pages_match"] &= subject_pages == oracle_pages
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = ("cache entries", "feeds", "dense regions")
    survival = {
        label: (totals["after"][slot] / totals["before"][slot])
        if totals["before"][slot]
        else None
        for slot, label in enumerate(labels)
    }
    catalog_size = len(db.all_matches(SearchQuery.everything()))
    rows = [
        f"{'catalog':>14s} {catalog_size:>6d} tuples, "
        f"{totals['touched']} touched over {totals['rounds']} deltas",
    ]
    for slot, label in enumerate(labels):
        rate = survival[label]
        rows.append(
            f"{label:>14s} {totals['before'][slot]:>6d} -> "
            f"{totals['after'][slot]:>4d}  "
            + (f"({rate:.1%} survival)" if rate is not None else "(none built)")
        )
    rows.append(
        f"{'re-serve cost':>14s} delta={totals['subject_queries']} vs "
        f"full-flush={totals['oracle_queries']} external queries"
    )
    print_table(
        "SC-DELTA — selective invalidation after ~1% catalog deltas",
        "warmed pool of banded requests; full-flush invalidate() as oracle",
        rows,
    )
    benchmark.extra_info.update(
        {
            "touched_tuples": totals["touched"],
            "pages_match": totals["pages_match"],
            "subject_queries": totals["subject_queries"],
            "oracle_queries": totals["oracle_queries"],
            **{
                f"{label.replace(' ', '_')}_survival": round(rate, 4)
                for label, rate in survival.items()
                if rate is not None
            },
        }
    )
    # Correctness gates: always enforced.
    assert totals["pages_match"], "delta-invalidated pages diverged from oracle"
    for label in ("cache entries", "feeds"):
        rate = survival[label]
        assert rate is not None and rate >= MIN_SURVIVAL, (
            f"{label} survival {rate} below {MIN_SURVIVAL:.0%}"
        )
    if survival["dense regions"] is not None:
        assert survival["dense regions"] >= MIN_SURVIVAL
    # Selective retirement must never cost more round trips than a flush.
    assert totals["subject_queries"] <= totals["oracle_queries"]


@pytest.mark.benchmark(group="delta-invalidation")
def test_warmer_preleads_retired_popular_feed(benchmark, bench_quick):
    """After a delta retires a popular feed, one warming pass must re-lead it
    so the next user request replays warmed pages at zero external queries."""
    size = 350 if bench_quick else 700
    registry = build_default_registry(
        diamond_config=DiamondCatalogConfig(size=size, seed=8),
        housing_config=HousingCatalogConfig(size=size, seed=9),
        database_config=DatabaseConfig(
            system_k=10, latency_seconds=1.0, latency_jitter=0.0
        ),
        rerank_config=RerankConfig(),
    )
    service = QR2Service(
        registry=registry,
        config=ServiceConfig(default_page_size=5, warming_pages=PAGES),
    )
    db = registry.get("bluenile").interface
    sliders = dict(popular_functions("bluenile")[0].sliders)

    def user_pages():
        """One user session paging through the popular function."""
        session_id = service.create_session()
        try:
            first = service.submit_query(session_id, "bluenile", sliders=sliders)
            pages = [[dict(row) for row in first["rows"]]]
            for _ in range(PAGES - 1):
                pages.append(
                    [
                        dict(row)
                        for row in service.get_next_page(session_id)["rows"]
                    ]
                )
            return pages
        finally:
            service.close_session(session_id)

    def run():
        user_pages()  # organic traffic seeds the feed and the tracker
        victim = dict(db.all_matches(SearchQuery.everything())[0])
        low, high = db.schema.domain_bounds("price")
        victim["price"] = min(high, float(victim["price"]) + (high - low) * 0.005)
        summary = service.apply_delta("bluenile", upserts=[victim])
        warmed = service.warmer.warm_once()
        checkpoint = db.queries_issued()
        pages = user_pages()
        return {
            "feeds_retired": int(summary["feeds_retired"]),
            "warmed_requests": warmed["warmed_requests"],
            "warmed_pages": warmed["warmed_pages"],
            "post_warm_queries": db.queries_issued() - checkpoint,
            "pages": pages,
        }

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    # Oracle: an independent reranker recomputes the popular ranking over the
    # same (mutated) catalog from scratch.
    oracle = QueryReranker(db, config=RerankConfig())
    ranking = ranking_from_sliders(sliders, db.schema)
    stream = oracle.rerank(
        SearchQuery.everything(), ranking, algorithm=Algorithm.RERANK
    )
    try:
        expected = [
            [dict(row) for row in stream.next_page(5)] for _ in range(PAGES)
        ]
    finally:
        stream.close()
    pages_match = payload["pages"] == expected
    print_table(
        "SC-WARM — popularity-driven warming after a delta",
        "popular bluenile function; FeedWarmer.warm_once() between delta and user",
        [
            f"{'feeds retired':>16s} {payload['feeds_retired']}",
            f"{'warmed':>16s} {payload['warmed_requests']} requests / "
            f"{payload['warmed_pages']} pages",
            f"{'user queries':>16s} {payload['post_warm_queries']} "
            f"(post-warm, {PAGES} pages)",
            f"{'pages match':>16s} {pages_match}",
        ],
    )
    benchmark.extra_info.update(
        {
            "feeds_retired": payload["feeds_retired"],
            "warmed_requests": payload["warmed_requests"],
            "warmed_pages": payload["warmed_pages"],
            "post_warm_queries": payload["post_warm_queries"],
            "pages_match": pages_match,
        }
    )
    # Correctness gates: always enforced.
    assert payload["feeds_retired"] >= 1, "the delta should retire the feed"
    assert payload["warmed_requests"] >= 1
    assert payload["post_warm_queries"] == 0, (
        "a warmed popular request must replay without external queries"
    )
    assert pages_match, "warmed pages diverged from an independent recompute"
