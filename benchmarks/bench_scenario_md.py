"""SC-MD — the "MD" demonstration scenario.

Multi-attribute slider functions on both web databases (including the paper's
2D and 3D Blue Nile functions and the Zillow best-case / Fig. 4 functions),
compared across MD-BASELINE, MD-BINARY, MD-RERANK, and MD-TA.
"""

from __future__ import annotations

import statistics as pystats

import pytest

from benchmarks._tables import print_table
from repro.core.reranker import Algorithm
from repro.workloads.experiments import default_md_scenarios, run_scenario_suite

ALGORITHMS = [Algorithm.BASELINE, Algorithm.BINARY, Algorithm.RERANK, Algorithm.TA]


@pytest.mark.benchmark(group="scenario-md")
@pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.value)
def test_scenario_md_query_cost(benchmark, environment, algorithm):
    """Query cost of one MD algorithm across the MD demonstration scenarios."""
    depth = 5  # MD requests are heavier; five answers per scenario
    scenarios = default_md_scenarios(environment)

    def run():
        return run_scenario_suite(scenarios, [algorithm], environment, depth=depth)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    mean_queries = pystats.mean(result.external_queries for result in results)
    benchmark.extra_info.update(
        {
            "algorithm": algorithm.value,
            "scenarios": len(results),
            "mean_queries": round(mean_queries, 1),
            "per_scenario_queries": {
                result.scenario: result.external_queries for result in results
            },
        }
    )
    print_table(
        f"SC-MD — MD-{algorithm.value.upper()} (top-{depth} per scenario)",
        f"{'scenario':>28s} {'dim':>4s} {'correlation':>12s} {'queries':>8s} "
        f"{'seconds':>8s} {'par.frac':>9s}",
        [
            f"{result.scenario:>28s} {result.dimensionality:4d} {result.correlation:>12s} "
            f"{result.external_queries:8d} {result.processing_seconds:8.1f} "
            f"{result.parallel_fraction:9.0%}"
            for result in results
        ],
    )
    for result in results:
        assert result.tuples_returned > 0
