"""CATALOG-SCALE — the buffer-backed columnar engine at 10⁴/10⁵/10⁶ tuples.

Every other bench runs at request scale on a 10⁴-tuple catalog; this tier
gates *data* scale.  A deterministic synthetic catalog
(:func:`~repro.dataset.generators.generate_scale_catalog`) is written
straight to SQLite, streamed back out with the batched
:meth:`~repro.sqlstore.store.SQLiteTupleStore.iter_rows` cursor, and served
by two databases over identical columns — one on the seed's pure-list
columnar layout (``columnar_backend="list"``), one on the compact buffer
layout (``"buffer"``: numpy views when importable, stdlib ``array``
otherwise).

The workload is shaped for the two places the list layout hurts at scale:
conjunctions of two ~2–3 %-selective ranges (candidate plans that sort a
10⁴–10⁵-position driver per query) and correlation-fooled rare conjunctions
(deep early-termination scans).  Narrow get-next probes and broad
overflowing queries round it out.

Gates:

* **byte-identity** (always, including ``--bench-quick``): list and buffer
  backends return identical pages and outcomes at every size; the naive
  reference scan is compared too at 10⁴;
* **speedup** (full runs, numpy available): ≥5× median per-query speedup
  for buffer over list at 10⁶ tuples;
* **memory** (full runs): the retained buffer catalog is ≤50 % of the
  dict-of-rows baseline (row dictionaries plus a key→row map — what the
  seed database held) at 10⁶ tuples.

Excluded from the per-PR quick gate except for a cheap 10⁴ sanity point;
the nightly ``scale-bench`` CI job runs the full tier and uploads
``BENCH_scale.json`` (see ``benchmarks/history/README.md``).
"""

from __future__ import annotations

import gc
import random
import resource
import statistics
import time
import tracemalloc
from typing import Dict, List, Tuple

import pytest

from benchmarks._tables import backend_metadata, print_table
from repro.dataset.generators import generate_scale_catalog, scale_catalog_schema
from repro.sqlstore.store import SQLiteTupleStore
from repro.webdb import arrays
from repro.webdb.database import HiddenWebDatabase, stream_sorted_columns
from repro.webdb.indexes import ColumnarCatalog
from repro.webdb.query import RangePredicate, SearchQuery
from repro.webdb.ranking import FeaturedScoreRanking

SIZES = (10_000, 100_000, 1_000_000)
SYSTEM_K = 20
QUERY_COUNT = 60
MIN_MEDIAN_SPEEDUP = 5.0
MAX_MEMORY_RATIO = 0.50
GATE_SIZE = 1_000_000
#: Naive reference comparison only at the smallest size — the row-at-a-time
#: scan needs minutes per workload beyond 10⁴ tuples.
NAIVE_SIZE = 10_000

_SCHEMA = scale_catalog_schema()
_STORES: Dict[int, SQLiteTupleStore] = {}
_GENERATE_SECONDS: Dict[int, float] = {}


def _ranking() -> FeaturedScoreRanking:
    return FeaturedScoreRanking("price", boost_weight=2500.0)


@pytest.fixture(scope="session")
def scale_store(tmp_path_factory):
    """Session-cached on-disk stores, one per catalog size, generated once."""
    root = tmp_path_factory.mktemp("scale-catalogs")

    def get(size: int) -> SQLiteTupleStore:
        if size not in _STORES:
            store = SQLiteTupleStore(_SCHEMA, path=str(root / f"scale_{size}.sqlite"))
            started = time.perf_counter()
            generate_scale_catalog(store, size, seed=13)
            _GENERATE_SECONDS[size] = time.perf_counter() - started
            _STORES[size] = store
        return _STORES[size]

    return get


def build_workload(count: int, seed: int = 17) -> List[SearchQuery]:
    rng = random.Random(seed)
    queries: List[SearchQuery] = []
    while len(queries) < count:
        roll = rng.random()
        if roll < 0.60:
            # Two ~2-3%-selective ranges: the candidate plan sorts a large
            # driver (about 1% of the catalog) and filters it.
            price_low = rng.uniform(150.0, 600.0)
            rating_low = round(rng.uniform(0.0, 9.7), 1)
            queries.append(
                SearchQuery(
                    (
                        RangePredicate("price", price_low, price_low + rng.uniform(8.0, 16.0)),
                        RangePredicate("rating", rating_low, rating_low + rng.choice((0.2, 0.3))),
                    )
                )
            )
        elif roll < 0.85:
            # Price and weight are positively correlated; a weight window far
            # off the regression line matches almost nothing, but the
            # independence estimate predicts plenty — the planner scans deep.
            price_low = rng.uniform(100.0, 400.0)
            price_high = price_low * rng.uniform(1.3, 1.8)
            weight_low = 0.02 * price_low + 1.0 + rng.uniform(25.0, 40.0)
            queries.append(
                SearchQuery(
                    (
                        RangePredicate("price", price_low, price_high),
                        RangePredicate("weight", weight_low, weight_low + rng.uniform(2.0, 5.0)),
                    )
                )
            )
        elif roll < 0.93:
            # Narrow get-next probing window.
            lower = rng.uniform(50.0, 4000.0)
            queries.append(
                SearchQuery((RangePredicate("price", lower, lower + rng.uniform(2.0, 20.0)),))
            )
        else:
            # Broad, overflowing query (early termination on both backends).
            queries.append(
                SearchQuery((RangePredicate("price", rng.uniform(10.0, 200.0), 5000.0),))
            )
    return queries


def _load_database(store: SQLiteTupleStore, backend: str, engine: str = "indexed"):
    started = time.perf_counter()
    database = HiddenWebDatabase.from_tuple_store(
        store,
        _SCHEMA,
        _ranking(),
        system_k=SYSTEM_K,
        columnar_backend=backend,
        name=f"scale-{backend}-{engine}",
        engine=engine,
    )
    return database, time.perf_counter() - started


def _time_workload(database: HiddenWebDatabase, queries: List[SearchQuery]):
    results, timings = [], []
    for query in queries:
        started = time.perf_counter()
        result = database.search(query)
        timings.append(time.perf_counter() - started)
        results.append(result)
    return results, timings


def _assert_identical(reference, candidate, label: str) -> None:
    for index, (expected, actual) in enumerate(zip(reference, candidate)):
        assert actual.outcome is expected.outcome, (
            f"{label}: query {index} outcome diverged "
            f"({actual.outcome} vs {expected.outcome})"
        )
        assert len(actual.rows) == len(expected.rows), (
            f"{label}: query {index} row count diverged"
        )
        for expected_row, actual_row in zip(expected.rows, actual.rows):
            assert list(actual_row.items()) == list(expected_row.items()), (
                f"{label}: query {index} returned non-identical rows"
            )


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@pytest.mark.benchmark(group="catalog-scale")
@pytest.mark.parametrize("size", SIZES)
def test_scale_latency_and_identity(benchmark, bench_quick, scale_store, size):
    """Per-query latency list vs buffer at each size, byte-identical pages
    (≥5× median buffer speedup gated at 10⁶ on full numpy runs)."""
    if bench_quick and size > 10_000:
        pytest.skip("quick mode runs only the 10^4 sanity point")
    store = scale_store(size)
    queries = build_workload(QUERY_COUNT)

    def run():
        list_db, list_load = _load_database(store, "list")
        buffer_db, buffer_load = _load_database(store, "buffer")
        # Warm the lazy per-attribute indexes so the timings below measure
        # steady-state query execution, not one-off index construction.
        for query in queries:
            list_db.search(query)
            buffer_db.search(query)
        list_results, list_timings = _time_workload(list_db, queries)
        buffer_results, buffer_timings = _time_workload(buffer_db, queries)
        naive_results = None
        if size <= NAIVE_SIZE:
            naive_db, _ = _load_database(store, "list", engine="naive")
            naive_results, _ = _time_workload(naive_db, queries)
        return (
            list_results, list_timings, buffer_results, buffer_timings,
            naive_results, list_load, buffer_load,
        )

    (
        list_results, list_timings, buffer_results, buffer_timings,
        naive_results, list_load, buffer_load,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    _assert_identical(list_results, buffer_results, f"{size}: list vs buffer")
    if naive_results is not None:
        _assert_identical(naive_results, list_results, f"{size}: naive vs list")
        _assert_identical(naive_results, buffer_results, f"{size}: naive vs buffer")

    list_median = statistics.median(list_timings)
    buffer_median = statistics.median(buffer_timings)
    median_speedup = list_median / buffer_median if buffer_median > 0 else float("inf")
    total_speedup = sum(list_timings) / max(sum(buffer_timings), 1e-12)
    p99_index = max(0, int(0.99 * len(buffer_timings)) - 1)

    benchmark.extra_info.update(
        {
            "catalog_size": size,
            "queries": QUERY_COUNT,
            "generate_seconds": round(_GENERATE_SECONDS.get(size, 0.0), 2),
            "list_load_seconds": round(list_load, 2),
            "buffer_load_seconds": round(buffer_load, 2),
            "list_median_us": round(list_median * 1e6, 1),
            "buffer_median_us": round(buffer_median * 1e6, 1),
            "list_p99_us": round(sorted(list_timings)[p99_index] * 1e6, 1),
            "buffer_p99_us": round(sorted(buffer_timings)[p99_index] * 1e6, 1),
            "median_speedup": round(median_speedup, 2),
            "total_speedup": round(total_speedup, 2),
            "peak_rss_mb": round(_peak_rss_mb(), 1),
            "naive_compared": naive_results is not None,
            "quick_mode": bench_quick,
            **backend_metadata(),
        }
    )
    print_table(
        f"CATALOG-SCALE — list vs buffer columnar backend at {size} tuples",
        f"{size} tuples, k={SYSTEM_K}, {QUERY_COUNT} queries, 0 divergences",
        [
            f"{'list median':>16s} {list_median * 1e6:>12.1f} us/query",
            f"{'buffer median':>16s} {buffer_median * 1e6:>12.1f} us/query",
            f"{'median speedup':>16s} {median_speedup:>12.2f} x",
            f"{'total speedup':>16s} {total_speedup:>12.2f} x",
            f"{'peak RSS':>16s} {_peak_rss_mb():>12.1f} MB",
        ],
    )
    if size == GATE_SIZE and not bench_quick and arrays.numpy_available():
        assert median_speedup >= MIN_MEDIAN_SPEEDUP, (
            f"buffer backend median speedup {median_speedup:.2f}x at "
            f"{GATE_SIZE} tuples is below the {MIN_MEDIAN_SPEEDUP:.0f}x floor"
        )


def _retained_bytes(build) -> int:
    """Retained allocation of ``build()``'s result, measured by tracemalloc."""
    gc.collect()
    tracemalloc.start()
    before = tracemalloc.get_traced_memory()[0]
    result = build()
    gc.collect()
    after = tracemalloc.get_traced_memory()[0]
    tracemalloc.stop()
    del result
    gc.collect()
    return after - before


@pytest.mark.benchmark(group="catalog-scale")
def test_scale_memory_footprint(benchmark, bench_quick, scale_store):
    """Retained buffer-catalog memory ≤50% of the dict-of-rows baseline
    (gated at 10⁶ on full runs; the 10⁴ quick point records only)."""
    size = 10_000 if bench_quick else GATE_SIZE
    store = scale_store(size)
    ranking = _ranking()
    column_order = _SCHEMA.columns()

    def build_baseline():
        # What the seed database retained per tuple: a row dictionary in
        # hidden-rank order plus a key→row index over the same dictionaries.
        columns = stream_sorted_columns(store, _SCHEMA, ranking)
        rows = [
            {name: columns[name][rank] for name in column_order}
            for rank in range(size)
        ]
        by_key = {row[_SCHEMA.key]: row for row in rows}
        return rows, by_key

    def build_buffer():
        columns = stream_sorted_columns(store, _SCHEMA, ranking)
        return ColumnarCatalog.from_columns(
            columns, column_order, _SCHEMA.key, backend="buffer"
        )

    def run():
        baseline_bytes = _retained_bytes(build_baseline)
        buffer_bytes = _retained_bytes(build_buffer)
        return baseline_bytes, buffer_bytes

    baseline_bytes, buffer_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = buffer_bytes / max(baseline_bytes, 1)

    benchmark.extra_info.update(
        {
            "catalog_size": size,
            "baseline_mb": round(baseline_bytes / 1e6, 1),
            "buffer_mb": round(buffer_bytes / 1e6, 1),
            "memory_ratio": round(ratio, 3),
            "peak_rss_mb": round(_peak_rss_mb(), 1),
            "quick_mode": bench_quick,
            **backend_metadata(),
        }
    )
    print_table(
        f"CATALOG-SCALE — retained catalog memory at {size} tuples",
        f"{size} tuples (tracemalloc, retained after gc)",
        [
            f"{'dict-of-rows':>16s} {baseline_bytes / 1e6:>12.1f} MB",
            f"{'buffer catalog':>16s} {buffer_bytes / 1e6:>12.1f} MB",
            f"{'ratio':>16s} {ratio:>12.3f}",
        ],
    )
    if not bench_quick:
        assert ratio <= MAX_MEMORY_RATIO, (
            f"buffer catalog retains {ratio:.1%} of the dict-of-rows "
            f"baseline; the ceiling is {MAX_MEMORY_RATIO:.0%}"
        )


@pytest.mark.benchmark(group="catalog-scale")
def test_scale_streaming_equals_eager_load(benchmark, bench_quick, scale_store):
    """The streamed SQLite load must produce exactly the database the eager
    row-materializing constructor produces (cheap 10⁴ point, runs always)."""
    from repro.dataset.table import ColumnTable

    store = scale_store(10_000)
    queries = build_workload(24, seed=29)

    def run():
        table = ColumnTable.from_rows(store.all_rows(), columns=_SCHEMA.columns())
        eager = HiddenWebDatabase(
            table, _SCHEMA, _ranking(), system_k=SYSTEM_K, name="scale-eager"
        )
        streamed, _ = _load_database(store, "buffer")
        eager_results = [eager.search(query) for query in queries]
        streamed_results = [streamed.search(query) for query in queries]
        return eager_results, streamed_results

    eager_results, streamed_results = benchmark.pedantic(run, rounds=1, iterations=1)
    _assert_identical(eager_results, streamed_results, "eager vs streamed")
    benchmark.extra_info.update({"catalog_size": 10_000, **backend_metadata()})
