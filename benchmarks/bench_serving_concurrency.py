"""SC-SERVE — concurrent serving tier: throughput, byte-identity, and SLO.

PR 7 puts a worker-pool execution layer (:mod:`repro.service.concurrent`)
between the HTTP boundary and :class:`QR2Service`: bounded admission,
per-session serialization, graceful drain, and a background session reaper.
This bench drives it with the open-loop Zipf workload of
:mod:`repro.workloads.loadgen` — the skewed popularity mix the shared rerank
feed (PR 5) was built for — against **really sleeping** simulated sources
(``DatabaseConfig.latency_sleep``), and enforces the serving tier's three
contracts:

* **THROUGHPUT** — at 32 workers the tier must complete the identical trace at
  >= 4x the throughput of a serialized replay (one request at a time on the
  same fresh service build).  Both sides are wall-clock measured in the same
  process, so the gate is a machine-independent ratio.
* **BYTE-IDENTITY** — every page served concurrently must be byte-identical to
  the sequential replay of the same trace: admission, scheduling, and the
  leader/follower feed races may change *who* computes a page, never *what*
  the user sees.
* **SLO** — the p99 request latency of the open-loop run must stay under the
  configured :attr:`ServiceConfig.slo_p99_seconds` ceiling, and the tier must
  drain cleanly afterwards (no stuck in-flight work).

A second benchmark overloads a deliberately tiny tier (2 workers, depth-6
queue) with a burst and checks the load-shedding contract: structured 429
rejections, completed sessions still byte-identical to the reference, clean
drain, and admission counters that add up.

The correctness gates always run (including in ``--bench-quick`` CI mode);
quick mode only shrinks the trace.
"""

from __future__ import annotations

import pytest

from benchmarks._tables import print_table
from repro.config import DatabaseConfig, RerankConfig, ServiceConfig
from repro.dataset.diamonds import DiamondCatalogConfig
from repro.dataset.housing import HousingCatalogConfig
from repro.service.app import QR2Service
from repro.service.concurrent import ConcurrentQR2Application
from repro.service.httpapp import QR2HttpApplication
from repro.service.sources import build_default_registry
from repro.workloads.loadgen import (
    ZipfWorkloadConfig,
    build_zipf_trace,
    collect_cache_metrics,
    replay_sequential,
    run_open_loop,
)

#: Simulated external round-trip latency (really slept) per search query.
#: Large enough that the I/O wait dominates GIL/scheduler noise — at 10ms the
#: measured speedup wobbled around the gate; at 20ms it sits at ~5.5x.
LATENCY_SECONDS = 0.02
#: Worker count the headline throughput gate runs at (the ISSUE's contract).
WORKERS = 32
#: Throughput must beat the serialized baseline by at least this factor.
SPEEDUP_GATE = 4.0
#: p99 latency ceiling for the open-loop run.
SLO_P99_SECONDS = 1.5
#: Offered load: the open-loop arrival window is sequential_wall / this.
OFFERED_LOAD_FACTOR = 8.0


def _make_service(workers: int, queue_depth: int, latency: float = LATENCY_SECONDS) -> QR2Service:
    """A fresh service over really-sleeping simulated sources.

    Every run builds its own registry so the shared result cache, feeds, and
    dense indexes start cold — the sequential baseline and the concurrent run
    see identical initial state."""
    registry = build_default_registry(
        diamond_config=DiamondCatalogConfig(size=300, seed=21),
        housing_config=HousingCatalogConfig(size=300, seed=22),
        database_config=DatabaseConfig(
            system_k=10,
            latency_seconds=latency,
            latency_jitter=0.0,
            latency_sleep=True,
        ),
        rerank_config=RerankConfig(),
    )
    return QR2Service(
        registry=registry,
        config=ServiceConfig(
            default_page_size=5,
            serving_workers=workers,
            admission_queue_depth=queue_depth,
            slo_p99_seconds=SLO_P99_SECONDS,
            reaper_interval_seconds=30.0,
        ),
    )


@pytest.mark.benchmark(group="serving-concurrency")
def test_serving_throughput_byte_identity_and_slo(benchmark, bench_quick):
    """32 workers on the Zipf mix: >= 4x serialized throughput, byte-identical
    pages, p99 under the SLO, clean drain."""
    latency = LATENCY_SECONDS
    config = ZipfWorkloadConfig(
        distinct_queries=24 if bench_quick else 32,
        sessions=64 if bench_quick else 128,
        pages_per_session=2,
        page_size=5,
        zipf_exponent=1.1,
        seed=2026,
    )
    trace = build_zipf_trace(config)
    depth = trace.total_requests + 8  # throughput run must shed nothing

    def run():
        seq_app = QR2HttpApplication(_make_service(workers=1, queue_depth=depth, latency=latency))
        sequential = replay_sequential(seq_app, trace)
        seq_app.service.close()

        conc_app = ConcurrentQR2Application(
            _make_service(workers=WORKERS, queue_depth=depth, latency=latency)
        )
        slo = conc_app.service.config.slo_p99_seconds
        window = sequential.wall_seconds / OFFERED_LOAD_FACTOR
        concurrent = run_open_loop(conc_app, trace.with_arrival_window(window))
        metrics = collect_cache_metrics(conc_app.service)
        drained = conc_app.drain(timeout=60.0)
        tier = conc_app.tier.snapshot()
        conc_app.close()
        return {
            "sequential": sequential,
            "concurrent": concurrent,
            "slo_p99_seconds": slo,
            "arrival_window": window,
            "drained": drained,
            "tier": tier,
            "metrics": metrics,
        }

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    sequential = payload["sequential"]
    concurrent = payload["concurrent"]
    speedup = sequential.wall_seconds / concurrent.wall_seconds
    percentiles = concurrent.latency_percentiles()
    seq_percentiles = sequential.latency_percentiles()

    rows = [
        f"{'mode':>12s} {'wall_s':>8s} {'rps':>8s} {'p50_ms':>8s} {'p95_ms':>8s} "
        f"{'p99_ms':>8s} {'rejects':>8s}",
        f"{'sequential':>12s} {sequential.wall_seconds:>8.2f} "
        f"{sequential.throughput_rps:>8.1f} {seq_percentiles['p50'] * 1e3:>8.1f} "
        f"{seq_percentiles['p95'] * 1e3:>8.1f} {seq_percentiles['p99'] * 1e3:>8.1f} "
        f"{sequential.rejections:>8d}",
        f"{'32 workers':>12s} {concurrent.wall_seconds:>8.2f} "
        f"{concurrent.throughput_rps:>8.1f} {percentiles['p50'] * 1e3:>8.1f} "
        f"{percentiles['p95'] * 1e3:>8.1f} {percentiles['p99'] * 1e3:>8.1f} "
        f"{concurrent.rejections:>8d}",
        f"{'speedup':>12s} {speedup:>8.2f}x  (gate >= {SPEEDUP_GATE}x, "
        f"SLO p99 <= {payload['slo_p99_seconds']}s)",
    ]
    print_table(
        "SC-SERVE — concurrent serving vs serialized baseline",
        f"{len(trace.scripts)} Zipf sessions over {trace.distinct_queries} distinct "
        f"queries, {trace.total_requests} requests, {latency * 1e3:.0f}ms "
        f"slept per external query",
        rows,
    )

    feed_totals = {
        name: entry.get("feed", {}) for name, entry in payload["metrics"].items()
    }
    benchmark.extra_info.update(
        {
            "sessions": len(trace.scripts),
            "distinct_queries": trace.distinct_queries,
            "total_requests": trace.total_requests,
            "latency_seconds": latency,
            "workers": WORKERS,
            "sequential_wall_seconds": round(sequential.wall_seconds, 3),
            "concurrent_wall_seconds": round(concurrent.wall_seconds, 3),
            "speedup": round(speedup, 2),
            "throughput_rps": round(concurrent.throughput_rps, 1),
            "p50_seconds": round(percentiles["p50"], 4),
            "p95_seconds": round(percentiles["p95"], 4),
            "p99_seconds": round(percentiles["p99"], 4),
            "slo_p99_seconds": payload["slo_p99_seconds"],
            "rejection_rate": concurrent.rejection_rate,
            "max_in_flight": payload["tier"]["max_in_flight"],
            "feed_metrics": feed_totals,
        }
    )

    # Correctness gates: always enforced (including --bench-quick CI).
    assert concurrent.completed_requests == trace.total_requests, (
        f"concurrent run dropped requests: {concurrent.report()}"
    )
    assert concurrent.rejections == 0, "throughput run must not shed load"
    assert concurrent.pages_signature() == sequential.pages_signature(), (
        "concurrent pages diverged from the sequential replay of the same trace"
    )
    assert speedup >= SPEEDUP_GATE, (
        f"throughput gate failed: {speedup:.2f}x < {SPEEDUP_GATE}x "
        f"(seq {sequential.wall_seconds:.2f}s vs conc {concurrent.wall_seconds:.2f}s)"
    )
    assert percentiles["p99"] <= payload["slo_p99_seconds"], (
        f"p99 {percentiles['p99']:.3f}s over the {payload['slo_p99_seconds']}s SLO"
    )
    assert payload["drained"], "tier failed to drain after the run"
    assert payload["tier"]["in_flight"] == 0


@pytest.mark.benchmark(group="serving-concurrency")
def test_admission_control_sheds_load_and_recovers(benchmark, bench_quick):
    """A burst against a tiny tier must produce structured 429s, keep the
    accepted sessions byte-identical to the reference, and drain cleanly."""
    sessions = 16 if bench_quick else 32
    config = ZipfWorkloadConfig(
        distinct_queries=8,
        sessions=sessions,
        pages_per_session=1,
        page_size=5,
        seed=907,
    )
    trace = build_zipf_trace(config)  # all arrivals at t=0: a pure burst

    def run():
        ref_app = QR2HttpApplication(
            _make_service(workers=1, queue_depth=trace.total_requests + 8, latency=0.004)
        )
        reference = replay_sequential(ref_app, trace)
        ref_app.service.close()

        burst_app = ConcurrentQR2Application(
            _make_service(workers=2, queue_depth=6, latency=0.004)
        )
        burst = run_open_loop(burst_app, trace)
        tier = burst_app.tier.snapshot()
        drained = burst_app.drain(timeout=60.0)
        burst_app.close()
        return {"reference": reference, "burst": burst, "tier": tier, "drained": drained}

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = payload["reference"]
    burst = payload["burst"]
    tier = payload["tier"]

    print_table(
        "SC-SERVE-429 — admission control under burst (2 workers, depth 6)",
        f"{len(trace.scripts)} sessions arriving at once, {trace.total_requests} planned requests",
        [
            f"issued={len(burst.latencies)} completed={burst.completed_requests} "
            f"rejected={burst.rejections} ({burst.rejection_rate:.0%}) "
            f"aborted={burst.aborted_requests}",
            f"tier: completed={tier['completed']} rejected={tier['rejected']} "
            f"max_in_flight={tier['max_in_flight']} drained={payload['drained']}",
        ],
    )
    benchmark.extra_info.update(
        {
            "burst_sessions": len(trace.scripts),
            "burst_rejections": burst.rejections,
            "burst_rejection_rate": round(burst.rejection_rate, 4),
            "burst_completed": burst.completed_requests,
            "burst_max_in_flight": tier["max_in_flight"],
        }
    )

    # Correctness gates: always enforced.
    assert burst.rejections > 0, "burst produced no 429s: admission control inert"
    assert burst.completed_requests > 0, "admission control shed everything"
    assert tier["rejected"] == burst.rejections
    assert tier["max_in_flight"] <= 6, "admission queue depth exceeded"
    for key, page in burst.pages.items():
        assert page == reference.pages[key], (
            f"accepted page {key} diverged from the sequential reference under load shedding"
        )
    assert payload["drained"], "tier failed to drain after the burst"
    assert tier["in_flight"] == 0
