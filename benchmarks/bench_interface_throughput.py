"""INTERFACE-THROUGHPUT — the vectorized columnar engine vs the naive scan.

PR 1 removed *redundant* external queries with the shared result cache; this
bench measures the next multiplier: the per-query cost of the queries that do
reach the hidden database.  Two :class:`HiddenWebDatabase` instances are
built over the same 10⁴-tuple catalog — one on the seed's ``naive``
row-at-a-time scan, one on the ``indexed`` columnar engine — and serve an
identical mixed workload (narrow/medium/broad ranges, point lookups,
IN filters, and conjunctive combinations, roughly the shape the get-next
loops and the crawler produce).

Two gates:

* **divergence** (always, including ``--bench-quick`` CI smoke runs): every
  query must return byte-identical rows and the same outcome on both
  engines;
* **speedup** (full runs only): the indexed engine must be at least 5×
  faster at the workload median.
"""

from __future__ import annotations

import random
import statistics
import time
from typing import List

import pytest

from benchmarks._tables import backend_metadata, print_table
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import ColumnTable
from repro.webdb.database import HiddenWebDatabase
from repro.webdb.query import InPredicate, RangePredicate, SearchQuery
from repro.webdb.ranking import FeaturedScoreRanking

CATALOG_SIZE = 10_000
SYSTEM_K = 20
FULL_QUERIES = 240
QUICK_QUERIES = 48
MIN_MEDIAN_SPEEDUP = 5.0

MAKES = ("acme", "globex", "initech", "umbrella", "hooli", "vehement")
REGIONS = ("north", "south", "east", "west")


def build_catalog(seed: int = 13) -> ColumnTable:
    rng = random.Random(seed)
    rows = [
        {
            "id": f"sku-{i:05d}",
            "price": round(rng.uniform(10.0, 5000.0), 2),
            "weight": round(rng.uniform(0.1, 50.0), 1),
            "rating": float(rng.randint(1, 100)),
            "make": rng.choice(MAKES),
            "region": rng.choice(REGIONS),
        }
        for i in range(CATALOG_SIZE)
    ]
    return ColumnTable.from_rows(rows)


def build_schema() -> Schema:
    return Schema(
        key="id",
        attributes=(
            Attribute.numeric("price", 0, 5000),
            Attribute.numeric("weight", 0, 50),
            Attribute.numeric("rating", 0, 100),
            Attribute.categorical("make", MAKES),
            Attribute.categorical("region", REGIONS),
        ),
    )


def build_workload(count: int, seed: int = 17) -> List[SearchQuery]:
    """A mixed workload biased toward the narrow, selective queries the
    get-next loops issue — exactly where the naive scan walks the whole
    catalog to find a handful of matches."""
    rng = random.Random(seed)
    queries: List[SearchQuery] = []
    while len(queries) < count:
        roll = rng.random()
        if roll < 0.40:
            # Narrow price window (get-next probing shape).
            lower = rng.uniform(10.0, 4900.0)
            queries.append(
                SearchQuery(
                    (RangePredicate("price", lower, lower + rng.uniform(1.0, 25.0), True, False),)
                )
            )
        elif roll < 0.55:
            # Narrow range conjoined with a categorical filter.
            lower = rng.uniform(0.1, 45.0)
            queries.append(
                SearchQuery(
                    (RangePredicate("weight", lower, lower + rng.uniform(0.2, 2.0)),),
                    (InPredicate.of("make", rng.sample(MAKES, rng.randint(1, 2))),),
                )
            )
        elif roll < 0.70:
            # Point lookup on the coarse-grained rating attribute.
            value = float(rng.randint(1, 100))
            queries.append(
                SearchQuery(
                    (
                        RangePredicate("rating", value, value),
                        RangePredicate("price", rng.uniform(10, 2000), 5000.0),
                    )
                )
            )
        elif roll < 0.85:
            # Medium two-sided conjunction.
            price_low = rng.uniform(10.0, 3000.0)
            queries.append(
                SearchQuery(
                    (
                        RangePredicate("price", price_low, price_low + rng.uniform(100.0, 600.0)),
                        RangePredicate("rating", float(rng.randint(1, 50)), 100.0, False, True),
                    ),
                    (InPredicate.of("region", rng.sample(REGIONS, rng.randint(1, 3))),),
                )
            )
        else:
            # Broad, overflowing query (both engines early-terminate).
            queries.append(
                SearchQuery(
                    (RangePredicate("price", rng.uniform(10.0, 500.0), 5000.0),)
                )
            )
    return queries


def _time_workload(database: HiddenWebDatabase, queries: List[SearchQuery]):
    results = []
    timings = []
    for query in queries:
        started = time.perf_counter()
        result = database.search(query)
        timings.append(time.perf_counter() - started)
        results.append(result)
    return results, timings


def _assert_identical(naive_results, indexed_results) -> int:
    divergences = 0
    for reference, candidate in zip(naive_results, indexed_results):
        same = (
            candidate.outcome is reference.outcome
            and len(candidate.rows) == len(reference.rows)
            and all(
                list(actual.items()) == list(expected.items())
                for expected, actual in zip(reference.rows, candidate.rows)
            )
        )
        if not same:
            divergences += 1
    assert divergences == 0, f"{divergences} queries diverged between engines"
    return divergences


@pytest.mark.benchmark(group="interface-throughput")
def test_indexed_engine_speedup_over_naive_scan(benchmark, bench_quick):
    """≥5× median per-query speedup on a 10⁴-tuple catalog, byte-identical
    results (speedup asserted on full runs; divergence asserted always)."""
    catalog = build_catalog()
    schema = build_schema()
    query_count = QUICK_QUERIES if bench_quick else FULL_QUERIES
    queries = build_workload(query_count)

    def run():
        naive = HiddenWebDatabase(
            catalog, schema, FeaturedScoreRanking("price", boost_weight=900.0),
            system_k=SYSTEM_K, engine="naive", name="bench-naive",
        )
        indexed = HiddenWebDatabase(
            catalog, schema, FeaturedScoreRanking("price", boost_weight=900.0),
            system_k=SYSTEM_K, engine="indexed", name="bench-indexed",
        )
        naive_results, naive_timings = _time_workload(naive, queries)
        indexed_results, indexed_timings = _time_workload(indexed, queries)
        return naive_results, naive_timings, indexed_results, indexed_timings

    naive_results, naive_timings, indexed_results, indexed_timings = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    _assert_identical(naive_results, indexed_results)
    naive_median = statistics.median(naive_timings)
    indexed_median = statistics.median(indexed_timings)
    median_speedup = naive_median / indexed_median if indexed_median > 0 else float("inf")
    total_speedup = sum(naive_timings) / max(sum(indexed_timings), 1e-12)

    benchmark.extra_info.update(
        {
            "catalog_size": CATALOG_SIZE,
            "queries": query_count,
            "naive_median_us": round(naive_median * 1e6, 1),
            "indexed_median_us": round(indexed_median * 1e6, 1),
            "median_speedup": round(median_speedup, 2),
            "total_speedup": round(total_speedup, 2),
            "quick_mode": bench_quick,
            **backend_metadata(),
        }
    )
    print_table(
        "INTERFACE-THROUGHPUT — naive scan vs indexed columnar engine",
        f"{CATALOG_SIZE} tuples, k={SYSTEM_K}, {query_count} queries, 0 divergences",
        [
            f"{'naive median':>16s} {naive_median * 1e6:>10.1f} us/query",
            f"{'indexed median':>16s} {indexed_median * 1e6:>10.1f} us/query",
            f"{'median speedup':>16s} {median_speedup:>10.2f} x",
            f"{'total speedup':>16s} {total_speedup:>10.2f} x",
        ],
    )
    if not bench_quick:
        assert median_speedup >= MIN_MEDIAN_SPEEDUP, (
            f"median speedup {median_speedup:.2f}x below the "
            f"{MIN_MEDIAN_SPEEDUP:.0f}x floor"
        )


@pytest.mark.benchmark(group="interface-throughput")
def test_batched_search_many_matches_sequential(benchmark, bench_quick):
    """``search_many`` must return exactly what per-query ``search`` returns
    while amortizing plan setup across the batch."""
    catalog = build_catalog(seed=19)
    schema = build_schema()
    queries = build_workload(QUICK_QUERIES if bench_quick else FULL_QUERIES, seed=23)

    def run():
        sequential_db = HiddenWebDatabase(
            catalog, schema, FeaturedScoreRanking("price", boost_weight=900.0),
            system_k=SYSTEM_K, engine="indexed", name="bench-seq",
        )
        batched_db = HiddenWebDatabase(
            catalog, schema, FeaturedScoreRanking("price", boost_weight=900.0),
            system_k=SYSTEM_K, engine="indexed", name="bench-batch",
        )
        sequential = [sequential_db.search(query) for query in queries]
        batched = batched_db.search_many(queries)
        return sequential, batched

    sequential, batched = benchmark.pedantic(run, rounds=1, iterations=1)
    _assert_identical(sequential, batched)
    benchmark.extra_info.update(backend_metadata())
