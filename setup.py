"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file only exists so
that environments without the ``wheel`` package (which cannot build PEP 517
editable installs) can still run ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
