#!/usr/bin/env python3
"""Regenerate every figure / scenario of the paper and print paper-vs-measured.

This drives the experiment harness in :mod:`repro.workloads.experiments` at a
configurable catalog scale and prints one section per artifact:

* Fig. 2  — fraction of iterations / queries issued in parallel (2D and 3D),
* Fig. 4  — query cost and processing time of the statistics-panel request,
* SC-1D   — 1D algorithm comparison across correlation classes,
* SC-MD   — MD algorithm comparison,
* SC-IDX  — on-the-fly indexing amortization,
* SC-BW   — best versus worst case.

Run with::

    python examples/reproduce_paper_figures.py [--scale 0.5] [--depth 10]
"""

from __future__ import annotations

import argparse

from repro.core.reranker import Algorithm
from repro.workloads.experiments import (
    ExperimentEnvironment,
    default_1d_scenarios,
    default_md_scenarios,
    run_best_worst_cases,
    run_fig2_parallelism,
    run_fig4_statistics,
    run_onthefly_indexing,
    run_scenario_suite,
    summarize_by_correlation,
)


def section(title: str) -> None:
    print("\n" + "=" * 76)
    print(title)
    print("=" * 76)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5, help="catalog scale (1.0 = full)")
    parser.add_argument("--depth", type=int, default=10, help="results fetched per request")
    arguments = parser.parse_args()

    environment = ExperimentEnvironment(catalog_scale=arguments.scale)
    print(
        f"environment: bluenile={environment.bluenile.size} tuples, "
        f"zillow={environment.zillow.size} tuples, system-k={environment.system_k}, "
        f"~{environment.latency_seconds:.0f}s simulated latency per query"
    )

    # ------------------------------------------------------------------ #
    section("FIG 2 — parallel processed queries per iteration (Blue Nile)")
    fig2 = run_fig2_parallelism(environment, depth=arguments.depth)
    print(f"{'function':>10s} {'iterations':>11s} {'parallel':>9s} {'queries':>8s} "
          f"{'par.queries':>12s} {'paper':>22s}")
    paper_claim = {"3d": "> 90% in parallel", "2d": "≈ 97% in parallel"}
    for label in ("3d", "2d"):
        payload = fig2[label]
        print(
            f"{label:>10s} {payload['iterations']:11d} "
            f"{payload['parallel_fraction']:9.0%} {payload['queries']:8d} "
            f"{payload['parallel_query_fraction']:12.0%} {paper_claim[label]:>22s}"
        )

    # ------------------------------------------------------------------ #
    section("FIG 4 — statistics panel for Zillow 'price - 0.3 squarefeet'")
    fig4 = run_fig4_statistics(environment, page_size=arguments.depth)
    print(f"measured : {fig4['external_queries']} queries, "
          f"{fig4['processing_seconds']:.1f} s for {fig4['rows_returned']} results")
    print(f"paper    : {fig4['paper_reference']['external_queries']} queries, "
          f"{fig4['paper_reference']['processing_seconds']:.0f} s")

    # ------------------------------------------------------------------ #
    section("SC-1D — 1D algorithms across correlation classes (mean queries)")
    one_d = run_scenario_suite(
        default_1d_scenarios(environment),
        [Algorithm.BASELINE, Algorithm.BINARY, Algorithm.RERANK],
        environment,
        depth=arguments.depth,
    )
    summary = summarize_by_correlation(one_d)
    print(f"{'correlation':>14s} {'baseline':>10s} {'binary':>10s} {'rerank':>10s}")
    for correlation in ("positive", "independent", "negative"):
        row = summary.get(correlation, {})
        print(
            f"{correlation:>14s} "
            f"{row.get('baseline', float('nan')):10.1f} "
            f"{row.get('binary', float('nan')):10.1f} "
            f"{row.get('rerank', float('nan')):10.1f}"
        )

    # ------------------------------------------------------------------ #
    section("SC-MD — MD algorithms (queries per scenario)")
    md = run_scenario_suite(
        default_md_scenarios(environment),
        [Algorithm.BASELINE, Algorithm.BINARY, Algorithm.RERANK, Algorithm.TA],
        environment,
        depth=max(arguments.depth // 2, 3),
    )
    print(f"{'scenario':>28s} {'dim':>4s} {'corr':>12s} "
          f"{'baseline':>9s} {'binary':>7s} {'rerank':>7s} {'ta':>7s}")
    by_scenario: dict = {}
    for result in md:
        by_scenario.setdefault(result.scenario, {})[result.algorithm] = result
    for name, cells in by_scenario.items():
        any_cell = next(iter(cells.values()))
        def fmt(algorithm):
            cell = cells.get(algorithm)
            return f"{cell.external_queries:7d}" if cell else "      -"
        print(
            f"{name:>28s} {any_cell.dimensionality:4d} {any_cell.correlation:>12s} "
            f"{fmt('baseline'):>9s} {fmt('binary')} {fmt('rerank')} {fmt('ta')}"
        )

    # ------------------------------------------------------------------ #
    section("SC-IDX — on-the-fly indexing amortization (queries per repetition)")
    idx = run_onthefly_indexing(environment, repetitions=5, depth=arguments.depth)
    print(f"workload  : {idx['ranking']} where {idx['query']}")
    print(f"1D-RERANK : {idx['rerank_costs']}   (shared index, amortized "
          f"{idx['rerank_amortized']:.1f}/request)")
    print(f"1D-BINARY : {idx['binary_costs']}   (no index, amortized "
          f"{idx['binary_amortized']:.1f}/request)")
    print(f"index now holds {idx['index_regions']} regions / {idx['index_tuples']} tuples")

    # ------------------------------------------------------------------ #
    section("SC-BW — best versus worst case")
    bw = run_best_worst_cases(environment, depth=arguments.depth)
    worst, best = bw["worst_case"], bw["best_case"]
    print(f"worst case ({worst['ranking']}), LWR=1.0 cluster of "
          f"{worst['lwr_cluster_size']} tuples "
          f"({worst['lwr_cluster_fraction']:.0%} of the catalog):")
    print(f"  MD-TA cold : {worst['ta_cold']['queries']} queries, {worst['ta_cold']['seconds']:.1f} s")
    print(f"  MD-TA warm : {worst['ta_warm']['queries']} queries, {worst['ta_warm']['seconds']:.1f} s")
    print(f"  MD-RERANK  : {worst['rerank']['queries']} queries, {worst['rerank']['seconds']:.1f} s")
    print(f"best case ({best['ranking']}):")
    print(f"  MD-TA      : {best['ta']['queries']} queries, {best['ta']['seconds']:.1f} s")
    print(f"  MD-RERANK  : {best['rerank']['queries']} queries, {best['rerank']['seconds']:.1f} s")


if __name__ == "__main__":
    main()
