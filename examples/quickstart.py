#!/usr/bin/env python3
"""Quickstart: rerank a simulated web database with your own ranking function.

The script builds a small Blue Nile-like web database that only exposes a
top-k search interface with a hidden ranking, then uses the QR2 reranker to
answer a filtered query under a *user-chosen* ranking function — price minus
half a (normalized) carat — and prints the result pages together with the
statistics panel the QR2 UI shows (number of external queries, processing
time, parallelism).

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.config import RerankConfig
from repro.core.functions import LinearRankingFunction, SingleAttributeRanking
from repro.core.normalization import MinMaxNormalizer
from repro.core.reranker import Algorithm, QueryReranker
from repro.dataset.diamonds import DiamondCatalogConfig, diamond_schema, generate_diamond_catalog
from repro.dataset.table import ColumnTable
from repro.webdb.database import HiddenWebDatabase
from repro.webdb.latency import LatencyModel
from repro.webdb.query import SearchQuery
from repro.webdb.ranking import FeaturedScoreRanking


def build_web_database() -> HiddenWebDatabase:
    """A simulated diamond retailer: 2 000 stones, top-20 interface, hidden
    'featured' ranking, and ~1 s of (accounted, not slept) latency per query."""
    config = DiamondCatalogConfig(size=2000, seed=42)
    return HiddenWebDatabase(
        catalog=generate_diamond_catalog(config),
        schema=diamond_schema(config),
        system_ranking=FeaturedScoreRanking("price", boost_weight=2500.0),
        system_k=20,
        latency=LatencyModel.accounted(1.0, seed=42),
        name="bluenile-sim",
    )


def show(rows, columns) -> None:
    """Pretty-print result rows."""
    if not rows:
        print("  (no results)")
        return
    table = ColumnTable.from_rows(rows, columns=columns)
    print(table.to_text(max_rows=len(rows)))


def main() -> None:
    database = build_web_database()
    print(f"Simulated web database: {database.describe()}\n")

    reranker = QueryReranker(database, config=RerankConfig())

    # --- the filtering section -------------------------------------------- #
    query = SearchQuery.build(
        ranges={"carat": (0.7, 2.5), "price": (500.0, 15000.0)},
        memberships={"shape": ["round", "princess", "cushion"]},
    )
    print(f"Filter: {query.describe()}\n")

    # --- a 1D reranking: biggest stones first ------------------------------ #
    one_dim = SingleAttributeRanking("carat", ascending=False)
    stream = reranker.rerank(query, one_dim, algorithm=Algorithm.RERANK)
    print("Top 5 by carat (descending), via 1D-RERANK:")
    show(stream.next_page(5), ["id", "price", "carat", "cut", "shape"])
    stats = stream.statistics.snapshot()
    print(
        f"  -> {stats['external_queries']} queries to the web database, "
        f"{stats['processing_seconds']:.1f} s simulated processing time\n"
    )

    # --- an MD reranking: the paper's slider function ----------------------- #
    normalizer = MinMaxNormalizer.from_schema(database.schema, ["price", "carat"])
    ranking = LinearRankingFunction({"price": 1.0, "carat": -0.5}, normalizer=normalizer)
    stream = reranker.rerank(query, ranking, algorithm=Algorithm.RERANK)
    print(f"Top 5 by '{ranking.describe()}', via MD-RERANK:")
    show(stream.next_page(5), ["id", "price", "carat", "cut", "shape"])

    print("\nGet-Next: the next page continues the same ranking...")
    show(stream.next_page(5), ["id", "price", "carat", "cut", "shape"])

    stats = stream.statistics.snapshot()
    print("\nStatistics panel:")
    print(f"  external queries   : {stats['external_queries']}")
    print(f"  processing seconds : {stats['processing_seconds']:.1f}")
    print(f"  parallel fraction  : {stats['parallel_fraction']:.0%} of iterations")
    print(f"  session cache hits : {stats['cache_hits']}")
    print(f"  dense-region index : {reranker.dense_index.describe()}")


if __name__ == "__main__":
    main()
