#!/usr/bin/env python3
"""End-to-end networked demo: a web database behind a real HTTP server, the
QR2 reranking service in front of it, and a JSON API client on top.

Three processes-worth of components run inside this one script, wired over
real TCP sockets on localhost:

1. the *web database* — the simulated Blue Nile served by
   ``repro.httpsim.server.serve_database_over_socket`` (this is the role the
   live web site plays in the paper);
2. the *QR2 third-party service* — a :class:`QueryReranker` that reaches the
   web database exclusively through its HTTP search API, exposed to end users
   through the QR2 JSON API (``repro.service.httpapp``);
3. the *end user* — plain ``urllib`` calls against the QR2 JSON API.

Run with::

    python examples/remote_service_demo.py
"""

from __future__ import annotations

import json
import urllib.request

from repro.config import DatabaseConfig, RerankConfig, ServiceConfig
from repro.core.reranker import QueryReranker
from repro.dataset.diamonds import DiamondCatalogConfig, diamond_schema, generate_diamond_catalog
from repro.httpsim.client import HttpClient, UrllibTransport
from repro.httpsim.server import serve_database_over_socket
from repro.service.app import QR2Service
from repro.service.httpapp import QR2HttpApplication, serve_qr2_over_socket
from repro.service.sources import DataSource, DataSourceRegistry
from repro.webdb.database import HiddenWebDatabase
from repro.webdb.latency import LatencyModel
from repro.webdb.ranking import FeaturedScoreRanking
from repro.webdb.remote import RemoteTopKInterface


def post_json(url: str, payload: dict) -> dict:
    """POST a JSON payload and decode the JSON response."""
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"), method="POST",
        headers={"content-type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as raw:
        return json.loads(raw.read())


def get_json(url: str) -> dict:
    """GET and decode a JSON response."""
    with urllib.request.urlopen(url, timeout=60) as raw:
        return json.loads(raw.read())


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Start the "web site": a hidden database behind a real HTTP server.
    # ------------------------------------------------------------------ #
    config = DiamondCatalogConfig(size=1200, seed=3)
    database = HiddenWebDatabase(
        catalog=generate_diamond_catalog(config),
        schema=diamond_schema(config),
        system_ranking=FeaturedScoreRanking("price", boost_weight=2500.0),
        system_k=20,
        latency=LatencyModel.disabled(),
        name="bluenile-remote",
    )
    site = serve_database_over_socket(database)
    print(f"[web database] listening on {site.base_url}")

    # ------------------------------------------------------------------ #
    # 2. Start QR2: a third-party service that only knows the site's URL.
    # ------------------------------------------------------------------ #
    remote_interface = RemoteTopKInterface(HttpClient(UrllibTransport(site.base_url)))
    registry = DataSourceRegistry()
    registry.register(
        DataSource(
            name="bluenile",
            title="Blue Nile via its public HTTP search API",
            interface=remote_interface,
            reranker=QueryReranker(remote_interface, config=RerankConfig()),
            result_columns=["id", "price", "carat", "cut", "color", "shape"],
        )
    )
    service = QR2Service(registry=registry, config=ServiceConfig(default_page_size=5))
    qr2 = serve_qr2_over_socket(QR2HttpApplication(service))
    print(f"[QR2 service]  listening on {qr2.base_url}\n")

    try:
        # -------------------------------------------------------------- #
        # 3. Act as the end user, over plain HTTP.
        # -------------------------------------------------------------- #
        sources = get_json(f"{qr2.base_url}/qr2/sources")
        print("sources advertised by QR2:", [s["name"] for s in sources["sources"]])

        session = post_json(f"{qr2.base_url}/qr2/sessions", {})
        session_id = session["session_id"]
        print(f"created session {session_id[:8]}…\n")

        print("query: carat in [0.8, 2.0], ranked by price - 0.5 carat")
        first_page = post_json(
            f"{qr2.base_url}/qr2/query",
            {
                "session_id": session_id,
                "source": "bluenile",
                "filters": {"ranges": {"carat": [0.8, 2.0]}},
                "sliders": {"price": 1.0, "carat": -0.5},
                "page_size": 5,
            },
        )
        print(first_page["rendered"])
        print("statistics:", {
            "external_queries": first_page["statistics"]["external_queries"],
            "processing_seconds": round(first_page["statistics"]["processing_seconds"], 2),
        })

        print("\nget-next (page 2):")
        second_page = post_json(f"{qr2.base_url}/qr2/next", {"session_id": session_id})
        print(second_page["rendered"])

        meta = get_json(f"{site.base_url}/api/meta")
        print(
            f"\nThe web site served {meta['queries_served']} search queries in total "
            f"to answer this session."
        )
    finally:
        qr2.shutdown()
        site.shutdown()
        print("\nservers stopped.")


if __name__ == "__main__":
    main()
