#!/usr/bin/env python3
"""Blue Nile scenario walk-through: algorithm comparison, the paper's 3D
slider function, the worst-case function, and on-the-fly indexing.

This example mirrors Section III of the ICDE'18 demo paper on the simulated
diamond database:

1. compare 1D-BASELINE / 1D-BINARY / 1D-RERANK on rankings that agree with,
   oppose, and ignore the hidden system ranking;
2. run the paper's 3D function ``price - 0.1 carat - 0.5 depth`` through
   MD-RERANK and MD-TA;
3. demonstrate the worst case ``price + length_width_ratio`` (about 20 % of
   the stones share ``length_width_ratio = 1.0``) and how the on-the-fly
   dense-region index amortizes it.

Run with::

    python examples/bluenile_diamonds.py
"""

from __future__ import annotations

from repro.config import RerankConfig
from repro.core.functions import LinearRankingFunction, SingleAttributeRanking
from repro.core.normalization import MinMaxNormalizer
from repro.core.reranker import Algorithm, QueryReranker
from repro.dataset.diamonds import DiamondCatalogConfig, diamond_schema, generate_diamond_catalog
from repro.webdb.database import HiddenWebDatabase
from repro.webdb.latency import LatencyModel
from repro.webdb.query import SearchQuery
from repro.webdb.ranking import FeaturedScoreRanking


def build_bluenile(size: int = 2000) -> HiddenWebDatabase:
    """The simulated Blue Nile source used throughout the example."""
    config = DiamondCatalogConfig(size=size, seed=2018)
    return HiddenWebDatabase(
        catalog=generate_diamond_catalog(config),
        schema=diamond_schema(config),
        system_ranking=FeaturedScoreRanking("price", boost_weight=2500.0),
        system_k=20,
        latency=LatencyModel.accounted(1.0, seed=7),
        name="bluenile-sim",
    )


def compare_1d_algorithms(database: HiddenWebDatabase) -> None:
    """Query cost of the three 1D algorithms under different correlations."""
    print("=" * 72)
    print("1D algorithms: query cost for 10 results")
    print("=" * 72)
    query = SearchQuery.build(ranges={"carat": (0.5, 3.0)})
    cases = [
        ("price asc  (agrees with hidden ranking)", SingleAttributeRanking("price", True)),
        ("price desc (opposes hidden ranking)", SingleAttributeRanking("price", False)),
        ("depth asc  (independent of hidden ranking)", SingleAttributeRanking("depth", True)),
    ]
    header = f"{'ranking':45s} {'baseline':>9s} {'binary':>9s} {'rerank':>9s}"
    print(header)
    for label, ranking in cases:
        costs = []
        for algorithm in (Algorithm.BASELINE, Algorithm.BINARY, Algorithm.RERANK):
            reranker = QueryReranker(database, config=RerankConfig())
            stream = reranker.rerank(query, ranking, algorithm=algorithm)
            stream.top(10)
            costs.append(stream.statistics.external_queries)
        print(f"{label:45s} {costs[0]:9d} {costs[1]:9d} {costs[2]:9d}")
    print()


def run_paper_3d_function(database: HiddenWebDatabase) -> None:
    """The 3D slider function of the paper's Fig. 3(b)."""
    print("=" * 72)
    print("MD reranking: price - 0.1 carat - 0.5 depth (the paper's 3D demo)")
    print("=" * 72)
    normalizer = MinMaxNormalizer.from_schema(database.schema, ["price", "carat", "depth"])
    ranking = LinearRankingFunction(
        {"price": 1.0, "carat": -0.1, "depth": -0.5}, normalizer=normalizer
    )
    for algorithm in (Algorithm.RERANK, Algorithm.TA):
        reranker = QueryReranker(database, config=RerankConfig())
        stream = reranker.rerank(SearchQuery.everything(), ranking, algorithm=algorithm)
        rows = stream.top(5)
        stats = stream.statistics.snapshot()
        print(f"\n  MD-{algorithm.value.upper()}:")
        for row in rows:
            print(
                f"    {row['id']}  price=${row['price']:>8.0f}  carat={row['carat']:.2f}  "
                f"depth={row['depth']:.1f}  cut={row['cut']}"
            )
        print(
            f"    -> {stats['external_queries']} queries, "
            f"{stats['processing_seconds']:.1f} s, "
            f"{stats['parallel_fraction']:.0%} of iterations parallel"
        )
    print()


def demonstrate_worst_case(database: HiddenWebDatabase) -> None:
    """The paper's worst case plus the on-the-fly indexing pay-off."""
    print("=" * 72)
    print("Worst case: price + length_width_ratio (the LWR=1.0 value cluster)")
    print("=" * 72)
    cluster = database.value_multiplicity("length_width_ratio").get(1.0, 0)
    print(
        f"  {cluster} of {database.size} stones "
        f"({cluster / database.size:.0%}) share length_width_ratio = 1.0; "
        f"system-k is only {database.system_k}.\n"
    )
    ranking = SingleAttributeRanking("length_width_ratio", ascending=True)
    # Starting the range at 0.995 puts the LWR = 1.0 cluster first in the
    # answer, so serving even one page requires crawling the whole group.
    query = SearchQuery.build(ranges={"length_width_ratio": (0.995, 1.6)})
    reranker = QueryReranker(database, config=RerankConfig())
    for attempt in ("cold (index empty)", "warm (dense region indexed)"):
        stream = reranker.rerank(query, ranking, algorithm=Algorithm.RERANK)
        stream.top(10)
        stats = stream.statistics.snapshot()
        print(
            f"  {attempt:30s}: {stats['external_queries']:4d} queries, "
            f"{stats['processing_seconds']:7.1f} s, "
            f"{stats['dense_regions_built']} regions crawled, "
            f"{stats['dense_index_hits']} index hits"
        )
    print(f"\n  dense-region index now holds: {reranker.dense_index.describe()}\n")


def main() -> None:
    database = build_bluenile()
    print(f"{database.describe()}\n")
    compare_1d_algorithms(database)
    run_paper_3d_function(database)
    demonstrate_worst_case(database)


if __name__ == "__main__":
    main()
