#!/usr/bin/env python3
"""Zillow scenario walk-through using the QR2 *service* layer.

This example exercises the path an end user of the demo takes: pick the
housing source, fill the filtering section, set the ranking sliders (or pick a
popular function), read the result pages, and press "get next" — all through
:class:`repro.service.app.QR2Service`, the framework-free equivalent of the
paper's Flask application.

It also reproduces the paper's best case (``price + squarefeet``) and the
Fig. 4 statistics function (``price - 0.3 squarefeet``).

Run with::

    python examples/zillow_housing.py
"""

from __future__ import annotations

from repro.config import DatabaseConfig, RerankConfig, ServiceConfig
from repro.dataset.diamonds import DiamondCatalogConfig
from repro.dataset.housing import HousingCatalogConfig
from repro.service.app import QR2Service
from repro.service.popular import popular_functions
from repro.service.sources import build_default_registry


def build_service() -> QR2Service:
    """A QR2 service over moderately sized simulated sources (~1 s latency)."""
    registry = build_default_registry(
        diamond_config=DiamondCatalogConfig(size=1500, seed=11),
        housing_config=HousingCatalogConfig(size=3000, seed=12),
        database_config=DatabaseConfig(system_k=20, latency_seconds=1.0),
        rerank_config=RerankConfig(),
    )
    return QR2Service(registry=registry, config=ServiceConfig(default_page_size=5))


def print_page(response) -> None:
    """Render one result page plus its statistics panel."""
    print(response["rendered"])
    stats = response["statistics"]
    print(
        f"  [statistics] {stats['external_queries']} queries issued to the web "
        f"database, {stats['processing_seconds']:.1f} s processing time, "
        f"{stats['cache_hits']} session-cache hits\n"
    )


def main() -> None:
    service = build_service()

    print("Available data sources:")
    for source in service.list_sources():
        print(f"  - {source['name']}: rankable attributes {source['ranking_attributes']}")
    print()

    print("Popular ranking functions suggested for Zillow:")
    for function in popular_functions("zillow"):
        print(f"  - {function.name}: {function.description}")
    print()

    session_id = service.create_session()

    # ------------------------------------------------------------------ #
    # Scenario 1: the Fig. 4 function (price - 0.3 squarefeet) with filters.
    # ------------------------------------------------------------------ #
    print("=" * 72)
    print("Scenario 1: price - 0.3 squarefeet, 3+ bedroom houses in Arlington/Fort Worth")
    print("=" * 72)
    response = service.submit_query(
        session_id,
        "zillow",
        filters={
            "ranges": {"bedrooms": (3, 6)},
            "memberships": {"city": ["arlington", "fort_worth"], "home_type": ["house"]},
        },
        sliders={"price": 1.0, "squarefeet": -0.3},
        page_size=5,
    )
    print_page(response)

    print("Pressing get-next for the second page...")
    print_page(service.get_next_page(session_id))

    # ------------------------------------------------------------------ #
    # Scenario 2: the paper's best case — price + squarefeet.
    # ------------------------------------------------------------------ #
    print("=" * 72)
    print("Scenario 2 (best case): price + squarefeet — small, cheap homes first")
    print("=" * 72)
    response = service.submit_query(
        session_id,
        "zillow",
        sliders={"price": 1.0, "squarefeet": 1.0},
        page_size=5,
    )
    print_page(response)

    # ------------------------------------------------------------------ #
    # Scenario 3: simple 1D ordering the site itself does not offer.
    # ------------------------------------------------------------------ #
    print("=" * 72)
    print("Scenario 3: newest construction first (order by year_built desc)")
    print("=" * 72)
    response = service.submit_query(
        session_id,
        "zillow",
        filters={"memberships": {"home_type": ["house", "townhouse"]}},
        ranking={"attribute": "year_built", "ascending": False},
        page_size=5,
    )
    print_page(response)

    print("Session summary:", service.session_info(session_id))


if __name__ == "__main__":
    main()
